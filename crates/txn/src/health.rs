//! Runtime health primitives: job deadlines, cooperative cancellation and
//! per-worker heartbeats.
//!
//! This is the substrate layer: a [`CancelToken`] every scheduler probes at
//! attempt boundaries, a [`HealthBoard`] of per-worker heartbeat slots, and
//! the [`HealthHandle`] workers carry. The policy layer — the watchdog that
//! scans the board and the admission gate in front of the drivers — lives
//! in the `tufast` crate (`tufast::health`), because escalation targets
//! (the serial-fallback token, the drain pools) are wired up there.
//!
//! Design rule: probes must be near-free on the hot path. A worker's
//! [`HealthHandle::checkpoint`] is one relaxed heartbeat increment plus one
//! relaxed load of the job's cancel word; the wall clock is sampled only
//! every [`DEADLINE_PROBE_PERIOD`] checkpoints, and a past deadline
//! *latches* into the cancel word, so every later probe is again a single
//! load.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Heartbeat checkpoints between wall-clock deadline samples.
///
/// `Instant::now` is far more expensive than a relaxed atomic load; probing
/// it on every attempt would tax uncontended transactions. 32 keeps the
/// deadline resolution well under a millisecond for any realistic
/// transaction while making the common probe branch-predictable.
pub const DEADLINE_PROBE_PERIOD: u32 = 32;

/// Why the health subsystem stopped a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// [`CancelToken::cancel`] was called — by the user, or by the
    /// watchdog at the top of its escalation ladder.
    Cancelled,
    /// The job ran past its [`JobDeadline`].
    Deadline,
    /// Admission control refused the job or timed it out of the intake
    /// queue.
    Shed,
}

impl AbortReason {
    /// Stable lowercase label for logs and JSON.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::Cancelled => "cancelled",
            AbortReason::Deadline => "deadline",
            AbortReason::Shed => "shed",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Typed error a driver returns when the health subsystem stops a job
/// before it runs to completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobAborted {
    /// What stopped the job.
    pub reason: AbortReason,
    /// Pool items fully processed before the stop — the partial-progress
    /// figure (for checkpointed drivers, the final snapshot covers exactly
    /// this much work).
    pub items_done: u64,
}

impl std::fmt::Display for JobAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job aborted ({}) after {} items",
            self.reason, self.items_done
        )
    }
}

impl std::error::Error for JobAborted {}

/// Wall-clock budget for one job, measured from the moment the deadline is
/// armed (system build or [`HealthBoard::begin_job`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobDeadline(pub Duration);

/// Health knobs carried in [`SystemConfig`](crate::SystemConfig).
#[derive(Clone, Debug, Default)]
pub struct HealthConfig {
    /// Arm this wall-clock budget when the system is built. Re-armable per
    /// job via [`HealthBoard::begin_job`].
    pub deadline: Option<JobDeadline>,
}

// Cancel-word states. LIVE must be zero so a freshly-zeroed word means
// "running"; the nonzero states are latched once and map 1:1 onto
// `AbortReason`.
const STATE_LIVE: u8 = 0;
const STATE_CANCELLED: u8 = 1;
const STATE_DEADLINE: u8 = 2;
const STATE_SHED: u8 = 3;

/// Sentinel in the deadline word: no deadline armed.
const DEADLINE_NONE: u64 = u64::MAX;

fn state_to_reason(state: u8) -> Option<AbortReason> {
    match state {
        STATE_CANCELLED => Some(AbortReason::Cancelled),
        STATE_DEADLINE => Some(AbortReason::Deadline),
        STATE_SHED => Some(AbortReason::Shed),
        _ => None,
    }
}

struct TokenInner {
    /// `STATE_*` — zero while the job may run, latched nonzero to stop it.
    state: AtomicU8,
    /// Epoch the deadline offset is measured from (token creation).
    base: Instant,
    /// Nanoseconds after `base` at which the job times out, or
    /// [`DEADLINE_NONE`].
    deadline_ns: AtomicU64,
}

/// Shared stop-flag for one job: cloned into every worker, the watchdog,
/// and the caller that may want to cancel.
///
/// Cancellation is *cooperative*: setting the token does not interrupt
/// anything by itself; workers notice it at their next attempt/dequeue
/// boundary — points where no locks are held and no hardware transaction
/// is open — and unwind cleanly.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("reason", &self.reason())
            .finish()
    }
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(STATE_LIVE),
                base: Instant::now(),
                deadline_ns: AtomicU64::new(DEADLINE_NONE),
            }),
        }
    }

    /// Stop the job with [`AbortReason::Cancelled`].
    pub fn cancel(&self) {
        self.stop(AbortReason::Cancelled);
    }

    /// Stop the job with an explicit reason. The first reason to land
    /// wins; later calls are no-ops, so the reason a worker observes is
    /// stable.
    pub fn stop(&self, reason: AbortReason) {
        let code = match reason {
            AbortReason::Cancelled => STATE_CANCELLED,
            AbortReason::Deadline => STATE_DEADLINE,
            AbortReason::Shed => STATE_SHED,
        };
        let _ = self.inner.state.compare_exchange(
            STATE_LIVE,
            code,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Arm (or move) the wall-clock deadline, measured from now.
    pub fn arm_deadline(&self, deadline: JobDeadline) {
        let now_ns = self.inner.base.elapsed().as_nanos() as u64;
        let at = now_ns.saturating_add(deadline.0.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.inner.deadline_ns.store(at, Ordering::Release);
    }

    /// Remove any armed deadline (an already-latched timeout stays
    /// latched).
    pub fn clear_deadline(&self) {
        self.inner
            .deadline_ns
            .store(DEADLINE_NONE, Ordering::Release);
    }

    /// Re-arm the token for a fresh job: clear the latched state and
    /// install `deadline` (or none).
    pub fn reset(&self, deadline: Option<JobDeadline>) {
        self.inner.state.store(STATE_LIVE, Ordering::Release);
        match deadline {
            Some(d) => self.arm_deadline(d),
            None => self.clear_deadline(),
        }
    }

    /// The latched stop reason, if any. One relaxed load — this is the
    /// hot-path probe.
    #[inline]
    pub fn reason(&self) -> Option<AbortReason> {
        state_to_reason(self.inner.state.load(Ordering::Relaxed))
    }

    /// Whether the job must stop (fast path; does not sample the clock).
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.reason().is_some()
    }

    /// Full probe: check the latched state *and* the wall clock, latching
    /// [`AbortReason::Deadline`] if the budget ran out.
    pub fn poll(&self) -> Option<AbortReason> {
        if let Some(reason) = self.reason() {
            return Some(reason);
        }
        let at = self.inner.deadline_ns.load(Ordering::Acquire);
        if at != DEADLINE_NONE && self.inner.base.elapsed().as_nanos() as u64 >= at {
            self.stop(AbortReason::Deadline);
            return self.reason();
        }
        None
    }

    /// Wall-clock budget left before the armed deadline (`None` when no
    /// deadline is armed). The admission gate uses this to bound its queue
    /// wait.
    pub fn remaining(&self) -> Option<Duration> {
        let at = self.inner.deadline_ns.load(Ordering::Acquire);
        if at == DEADLINE_NONE {
            return None;
        }
        let now_ns = self.inner.base.elapsed().as_nanos() as u64;
        Some(Duration::from_nanos(at.saturating_sub(now_ns)))
    }
}

/// Local 128-byte-aligned wrapper so each worker's heartbeat slot owns its
/// cache line (the `tufast` crate has `CachePadded`, but this crate sits
/// below it in the dependency order).
#[repr(align(128))]
#[derive(Default)]
struct Padded<T>(T);

/// One worker's heartbeat slot. Owner-written (relaxed), watchdog-read.
#[derive(Default)]
struct HeartSlot {
    /// Monotone liveness counter, bumped at every attempt/dequeue
    /// boundary. Flat across scans on a non-idle worker ⇒ stalled.
    beat: AtomicU64,
    /// Commits by this worker. Flat while `restarts` climbs ⇒ livelocked.
    commits: AtomicU64,
    /// Attempt restarts by this worker.
    restarts: AtomicU64,
    /// Set while the worker is parked/spinning on an empty pool, so the
    /// watchdog can tell parked-idle from stalled.
    idle: AtomicBool,
}

/// Watchdog-readable view of one heartbeat slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeartbeatView {
    /// Liveness counter.
    pub beat: u64,
    /// Commit counter.
    pub commits: u64,
    /// Restart counter.
    pub restarts: u64,
    /// Parked-idle flag.
    pub idle: bool,
}

/// Cumulative health outcomes, drained into `TuFastStats` and the bench
/// JSON by the policy layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Watchdog escalation-ladder steps taken.
    pub watchdog_escalations: u64,
    /// Jobs stopped by explicit cancellation (user or watchdog).
    pub jobs_cancelled: u64,
    /// Jobs refused or timed out by admission control.
    pub jobs_shed: u64,
    /// Jobs stopped by a wall-clock deadline.
    pub deadline_aborts: u64,
}

impl HealthCounters {
    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HealthCounters) {
        self.watchdog_escalations += other.watchdog_escalations;
        self.jobs_cancelled += other.jobs_cancelled;
        self.jobs_shed += other.jobs_shed;
        self.deadline_aborts += other.deadline_aborts;
    }
}

/// Per-system health state: one heartbeat slot per worker id, the current
/// job's [`CancelToken`], the watchdog's escalation flags, and the
/// cumulative outcome counters.
pub struct HealthBoard {
    slots: Box<[Padded<HeartSlot>]>,
    token: CancelToken,
    /// Watchdog escalation level 1: extra backoff applied inside every
    /// health checkpoint (0 = none; each step roughly doubles the spin).
    boost: AtomicU32,
    /// Watchdog escalation level 2: make bounded lock waits victimize
    /// immediately (mirrored into the wait-for table by the watchdog).
    force_victims: AtomicBool,
    /// Watchdog escalation level 3: route TuFast transactions straight to
    /// the global serial-fallback token.
    force_serial: AtomicBool,
    escalations: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_shed: AtomicU64,
    deadline_aborts: AtomicU64,
}

impl HealthBoard {
    /// A board with `workers` heartbeat slots and a fresh live token.
    pub fn new(workers: usize) -> Self {
        HealthBoard {
            slots: (0..workers.max(1)).map(|_| Padded::default()).collect(),
            token: CancelToken::new(),
            boost: AtomicU32::new(0),
            force_victims: AtomicBool::new(false),
            force_serial: AtomicBool::new(false),
            escalations: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            deadline_aborts: AtomicU64::new(0),
        }
    }

    #[inline]
    fn slot(&self, worker: u32) -> &HeartSlot {
        // Worker ids are bounded by `SystemConfig::max_workers` (enforced
        // in `new_worker_id`), which sizes this board; the modulo is a
        // belt-and-braces guard, not an expected path.
        &self.slots[worker as usize % self.slots.len()].0
    }

    /// The current job's cancel token.
    #[inline]
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Number of heartbeat slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Re-arm the board for a fresh job: reset the token with `deadline`
    /// and drop any escalation state left by the previous job's watchdog.
    /// Cumulative counters are preserved.
    pub fn begin_job(&self, deadline: Option<JobDeadline>) {
        self.token.reset(deadline);
        self.boost.store(0, Ordering::Release);
        self.force_victims.store(false, Ordering::Release);
        self.force_serial.store(false, Ordering::Release);
    }

    /// Bump `worker`'s liveness counter (owner-only). Single-writer, so a
    /// load+store pair replaces the locked RMW — this runs at every txn
    /// attempt boundary, where a `fetch_add` is measurable.
    #[inline]
    pub fn beat(&self, worker: u32) {
        let beat = &self.slot(worker).beat;
        beat.store(
            beat.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
    }

    /// Record a commit on `worker`'s slot (owner-only, single-writer).
    #[inline]
    pub fn note_commit(&self, worker: u32) {
        let commits = &self.slot(worker).commits;
        commits.store(
            commits.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
    }

    /// Record an attempt restart on `worker`'s slot (owner-only,
    /// single-writer).
    #[inline]
    pub fn note_restart(&self, worker: u32) {
        let restarts = &self.slot(worker).restarts;
        restarts.store(
            restarts.load(Ordering::Relaxed).wrapping_add(1),
            Ordering::Relaxed,
        );
    }

    /// Flag `worker` as parked/spinning on an empty pool (or back at
    /// work), so the watchdog does not read an idle worker as stalled.
    #[inline]
    pub fn set_idle(&self, worker: u32, idle: bool) {
        self.slot(worker).idle.store(idle, Ordering::Relaxed);
    }

    /// Snapshot `worker`'s heartbeat slot.
    pub fn view(&self, worker: u32) -> HeartbeatView {
        let s = self.slot(worker);
        HeartbeatView {
            beat: s.beat.load(Ordering::Relaxed),
            commits: s.commits.load(Ordering::Relaxed),
            restarts: s.restarts.load(Ordering::Relaxed),
            idle: s.idle.load(Ordering::Relaxed),
        }
    }

    /// Current backoff-boost level (escalation 1).
    #[inline]
    pub fn backoff_boost(&self) -> u32 {
        self.boost.load(Ordering::Relaxed)
    }

    /// Set the backoff-boost level.
    pub fn set_backoff_boost(&self, level: u32) {
        self.boost.store(level, Ordering::Release);
    }

    /// Whether bounded lock waits should victimize immediately
    /// (escalation 2).
    #[inline]
    pub fn force_victims(&self) -> bool {
        self.force_victims.load(Ordering::Relaxed)
    }

    /// Set the force-victim flag.
    pub fn set_force_victims(&self, on: bool) {
        self.force_victims.store(on, Ordering::Release);
    }

    /// Whether TuFast should route transactions straight to the serial
    /// fallback (escalation 3).
    #[inline]
    pub fn force_serial(&self) -> bool {
        self.force_serial.load(Ordering::Relaxed)
    }

    /// Set the force-serial flag.
    pub fn set_force_serial(&self, on: bool) {
        self.force_serial.store(on, Ordering::Release);
    }

    /// Count one watchdog escalation-ladder step.
    pub fn note_escalation(&self) {
        self.escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one job outcome under `reason`.
    pub fn note_job_outcome(&self, reason: AbortReason) {
        let counter = match reason {
            AbortReason::Cancelled => &self.jobs_cancelled,
            AbortReason::Shed => &self.jobs_shed,
            AbortReason::Deadline => &self.deadline_aborts,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the cumulative outcome counters.
    pub fn counters(&self) -> HealthCounters {
        HealthCounters {
            watchdog_escalations: self.escalations.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.load(Ordering::Relaxed),
        }
    }

    /// Take and reset the cumulative outcome counters (so a stats `merge`
    /// downstream stays additive).
    pub fn take_counters(&self) -> HealthCounters {
        HealthCounters {
            watchdog_escalations: self.escalations.swap(0, Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.swap(0, Ordering::Relaxed),
            jobs_shed: self.jobs_shed.swap(0, Ordering::Relaxed),
            deadline_aborts: self.deadline_aborts.swap(0, Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for HealthBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthBoard")
            .field("workers", &self.slots.len())
            .field("token", &self.token)
            .field("counters", &self.counters())
            .finish()
    }
}

/// Per-worker health probe, snapshotted from the system at worker creation
/// (like `FaultHandle`). Carried by every scheduler worker and probed at
/// attempt boundaries.
pub struct HealthHandle {
    board: Arc<HealthBoard>,
    worker: u32,
    /// Checkpoints since the last wall-clock deadline sample (owner-only;
    /// `Cell` because probe sites only hold `&self`).
    probes: Cell<u32>,
}

impl HealthHandle {
    /// A handle writing into `worker`'s slot on `board`.
    pub fn attached(board: Arc<HealthBoard>, worker: u32) -> Self {
        HealthHandle {
            board,
            worker,
            probes: Cell::new(0),
        }
    }

    /// The worker id this handle beats for.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// The shared board.
    pub fn board(&self) -> &Arc<HealthBoard> {
        &self.board
    }

    /// The attempt-boundary probe: bump the heartbeat, serve any
    /// watchdog-requested extra backoff, and report whether the job must
    /// stop. Callers see `Some(reason)` at a point where no locks are held
    /// and no hardware transaction is open, and unwind from there.
    #[inline]
    pub fn checkpoint(&self) -> Option<AbortReason> {
        self.board.beat(self.worker);
        let boost = self.board.backoff_boost();
        if boost > 0 {
            // Escalation 1: slow the retry storm down without parking —
            // roughly doubling per level, capped so level overflow cannot
            // freeze a worker.
            for _ in 0..(64u32 << boost.min(6)) {
                std::hint::spin_loop();
            }
        }
        let probes = self.probes.get().wrapping_add(1);
        self.probes.set(probes);
        if probes.is_multiple_of(DEADLINE_PROBE_PERIOD) {
            self.board.token().poll()
        } else {
            self.board.token().reason()
        }
    }

    /// Fast stop check without a heartbeat bump (pool drain loops call
    /// this between items).
    #[inline]
    pub fn stopped(&self) -> bool {
        self.board.token().is_stopped()
    }

    /// Force a full probe including the wall clock.
    pub fn poll(&self) -> Option<AbortReason> {
        self.board.token().poll()
    }

    /// Record a commit on this worker's slot.
    #[inline]
    pub fn note_commit(&self) {
        self.board.note_commit(self.worker);
    }

    /// Record a restart on this worker's slot.
    #[inline]
    pub fn note_restart(&self) {
        self.board.note_restart(self.worker);
    }

    /// Flag this worker parked-idle (or back at work).
    #[inline]
    pub fn set_idle(&self, idle: bool) {
        self.board.set_idle(self.worker, idle);
    }
}

impl std::fmt::Debug for HealthHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthHandle")
            .field("worker", &self.worker)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_stop_reason_wins() {
        let t = CancelToken::new();
        assert_eq!(t.reason(), None);
        t.stop(AbortReason::Shed);
        t.cancel();
        assert_eq!(t.reason(), Some(AbortReason::Shed));
        assert!(t.is_stopped());
    }

    #[test]
    fn deadline_latches_via_poll() {
        let t = CancelToken::new();
        t.arm_deadline(JobDeadline(Duration::from_millis(0)));
        // The zero budget is already exhausted; poll must latch it.
        assert_eq!(t.poll(), Some(AbortReason::Deadline));
        // Latched: visible to the fast path without another clock sample.
        assert_eq!(t.reason(), Some(AbortReason::Deadline));
    }

    #[test]
    fn unexpired_deadline_does_not_stop() {
        let t = CancelToken::new();
        t.arm_deadline(JobDeadline(Duration::from_secs(3600)));
        assert_eq!(t.poll(), None);
        let left = t.remaining().expect("deadline armed");
        assert!(left > Duration::from_secs(3000));
    }

    #[test]
    fn reset_rearms_for_a_new_job() {
        let t = CancelToken::new();
        t.cancel();
        assert!(t.is_stopped());
        t.reset(None);
        assert!(!t.is_stopped());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn board_views_track_owner_writes() {
        let b = HealthBoard::new(4);
        b.beat(2);
        b.beat(2);
        b.note_commit(2);
        b.note_restart(2);
        b.set_idle(2, true);
        let v = b.view(2);
        assert_eq!(
            v,
            HeartbeatView {
                beat: 2,
                commits: 1,
                restarts: 1,
                idle: true
            }
        );
        assert_eq!(b.view(0), HeartbeatView::default());
    }

    #[test]
    fn begin_job_clears_escalation_but_keeps_counters() {
        let b = HealthBoard::new(2);
        b.set_backoff_boost(3);
        b.set_force_victims(true);
        b.set_force_serial(true);
        b.note_escalation();
        b.note_job_outcome(AbortReason::Cancelled);
        b.token().cancel();
        b.begin_job(None);
        assert_eq!(b.backoff_boost(), 0);
        assert!(!b.force_victims());
        assert!(!b.force_serial());
        assert!(!b.token().is_stopped());
        let c = b.counters();
        assert_eq!(c.watchdog_escalations, 1);
        assert_eq!(c.jobs_cancelled, 1);
    }

    #[test]
    fn take_counters_resets_and_merge_is_additive() {
        let b = HealthBoard::new(1);
        b.note_escalation();
        b.note_job_outcome(AbortReason::Shed);
        b.note_job_outcome(AbortReason::Deadline);
        let mut total = HealthCounters::default();
        total.merge(&b.take_counters());
        assert_eq!(b.counters(), HealthCounters::default());
        total.merge(&b.take_counters());
        assert_eq!(total.watchdog_escalations, 1);
        assert_eq!(total.jobs_shed, 1);
        assert_eq!(total.deadline_aborts, 1);
    }

    #[test]
    fn handle_checkpoint_sees_cancel_and_beats() {
        let board = Arc::new(HealthBoard::new(2));
        let h = HealthHandle::attached(Arc::clone(&board), 1);
        assert_eq!(h.checkpoint(), None);
        board.token().cancel();
        assert_eq!(h.checkpoint(), Some(AbortReason::Cancelled));
        assert!(h.stopped());
        assert_eq!(board.view(1).beat, 2);
    }

    #[test]
    fn handle_checkpoint_latches_deadline_within_probe_period() {
        let board = Arc::new(HealthBoard::new(1));
        board
            .token()
            .arm_deadline(JobDeadline(Duration::from_millis(0)));
        let h = HealthHandle::attached(Arc::clone(&board), 0);
        let mut stopped = None;
        for _ in 0..=DEADLINE_PROBE_PERIOD {
            stopped = h.checkpoint();
            if stopped.is_some() {
                break;
            }
        }
        assert_eq!(stopped, Some(AbortReason::Deadline));
    }
}
