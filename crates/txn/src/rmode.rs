//! R mode: an epoch-versioned snapshot-read fast path for declared-pure
//! transactions.
//!
//! A transaction dispatched with [`TxnHint::read_only`] never takes a
//! vertex lock, never logs a read set, and never opens a hardware
//! transaction. Instead it *pins* the global version clock
//! ([`TxnSystem::read_snapshot`]) and validates every read against the
//! pin, RLU/TL2-style:
//!
//! 1. **Pin** `snap = clock_now()`. The clock only moves inside writer
//!    commit critical sections (line locks, vertex locks, the HSync
//!    fallback word), so `snap` names a committed state.
//! 2. **Read** `(v, addr)` by bracketing a plain load with plain loads of
//!    the writer-presence metadata: the vertex lock word must be
//!    writer-free and version-stable across the load, the HSync fallback
//!    word must be 0 on both sides, and `addr`'s cache-line version must
//!    be the *same* `≤ snap` value before and after. Any failed check is
//!    either a transient writer (bounded spin, then re-pin) or a stale
//!    snapshot (line republished past `snap` — re-pin immediately).
//! 3. **Commit** by doing nothing: an accepted read set *is* the committed
//!    state at `snap`, so the transaction serializes at its pin. The
//!    serialization ticket reported to the observer is `snap` itself.
//!
//! Why this is safe against every writer in the workspace:
//!
//! * Buffered writers (OCC, TO, O-mode optimistic commit, STM, HTM
//!   commits) publish under line locks and/or vertex write locks; the
//!   bracket rejects reads that race the publication window.
//! * In-place writers (2PL, the serial fallback through 2PL, the HSync
//!   global-fallback path) expose uncommitted values, but only while the
//!   vertex lock (resp. fallback word) is held — the bracket refuses those
//!   too, and rollbacks republish the line before the lock is released.
//! * Every commit path finishes by republishing its written lines at a
//!   clock version minted *after* its serialization ticket
//!   ([`TxMemory::republish_line`](tufast_htm::TxMemory)). A reader pinned
//!   anywhere inside a writer's commit therefore sees post-commit line
//!   versions strictly above its pin and re-pins, instead of accepting a
//!   half-published transaction (a fractured read). The HTM commit path
//!   needs no extra republish: it already unlocks write lines at exactly
//!   its ticket.
//!
//! The clock-monotonicity argument, spelled out once: a read is accepted
//! only with line version `ver ≤ snap` on both sides of the load. Every
//! version is a fresh clock tick, and `snap` was read before the bracket
//! ran, so `ver ≤ snap` implies the publication happened *before* the pin.
//! Accepted reads are thus exactly the newest publications at or below
//! `snap` — the committed snapshot at the pin — and the writer's ticket
//! (minted before its republished versions) is `≤ snap`, which keeps the
//! `tufast-check` DSG edges pointed forward.
//!
//! Declared purity is enforced three ways: statically by `tufast-lint`'s
//! `read-purity` rule, at runtime by demotion (a body that calls
//! [`TxnOps::write`] under a `read_only` hint aborts the R attempt and
//! re-runs on the scheduler's ordinary path), and loudly by the standalone
//! [`ReadMode`] scheduler, which has no ordinary path and panics instead.

use std::sync::Arc;

use tufast_htm::{Addr, LineState};

use crate::health::HealthHandle;
use crate::obs::ObsHandle;
use crate::system::TxnSystem;
use crate::traits::{
    backoff, GraphScheduler, SchedStats, TxInterrupt, TxnBody, TxnHint, TxnOps, TxnOutcome,
    TxnWorker,
};
use crate::VertexId;

/// Bounded spins per read while a writer is visibly mid-commit (vertex
/// lock held, fallback word set, or line locked) before the attempt gives
/// up and re-pins its snapshot.
const R_READ_SPINS: u32 = 128;

/// Attempt budget when the R path runs as a fast path inside a read/write
/// scheduler: a reader starved by a write storm demotes to the host
/// scheduler's ordinary (lock-based) path, which owns a liveness ladder.
pub const R_DEMOTE_ATTEMPTS: u32 = 64;

/// Outcome of [`run_read_only`]: what the host scheduler should do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RRun {
    /// The body committed on the snapshot-read path.
    Committed {
        /// Body executions (1 = first pin sufficed).
        attempts: u32,
    },
    /// The body called [`TxnOps::user_abort`]; nothing to roll back.
    UserAborted {
        /// Body executions.
        attempts: u32,
    },
    /// The job's cancel token latched at an attempt boundary.
    HealthStopped {
        /// Body executions.
        attempts: u32,
    },
    /// The body must re-run on the host scheduler's ordinary path: it
    /// either called [`TxnOps::write`] despite the `read_only` declaration
    /// (`wrote`), or exhausted `max_attempts` re-pins under writer churn.
    Demoted {
        /// Body executions spent on the R path (fold into the outcome).
        attempts: u32,
        /// The demotion was a declared-purity violation, not starvation.
        wrote: bool,
    },
}

/// [`TxnOps`] for one R-mode attempt: validated snapshot reads, and a
/// write path that only records the purity violation.
struct ROps<'a> {
    sys: &'a TxnSystem,
    snap: u64,
    reads: u64,
    wrote: bool,
}

impl ROps<'_> {
    /// One bracketed snapshot read; `Err(Restart)` means re-pin.
    fn snapshot_read(&mut self, v: VertexId, addr: Addr) -> Result<u64, TxInterrupt> {
        let mem = self.sys.mem();
        let locks = self.sys.locks();
        let fallback = self.sys.fallback_word();
        let line = addr.line();
        let mut spins = 0u32;
        loop {
            // Opening bracket: all plain loads, nothing acquired.
            let w1 = locks.peek(mem, v);
            let fb1 = mem.load_direct(fallback);
            if w1.writer().is_none() && fb1 == 0 {
                match mem.line_state(line) {
                    LineState::Unlocked { version } if version <= self.snap => {
                        let val = mem.load_direct(addr);
                        // Closing bracket: the line version must not have
                        // moved across the load, and no writer may have
                        // appeared (reader counts changing is benign).
                        let line_stable = matches!(
                            mem.line_state(line),
                            LineState::Unlocked { version: v2 } if v2 == version
                        );
                        let w2 = locks.peek(mem, v);
                        let fb2 = mem.load_direct(fallback);
                        if line_stable
                            && w2.writer().is_none()
                            && w2.version() == w1.version()
                            && fb2 == 0
                        {
                            return Ok(val);
                        }
                    }
                    LineState::Unlocked { .. } => {
                        // Published past the pin: this snapshot can never
                        // accept the line — re-pin immediately.
                        return Err(TxInterrupt::Restart);
                    }
                    LineState::Locked { .. } => {}
                }
            }
            // A writer is visibly mid-flight: spin briefly, then re-pin.
            spins += 1;
            if spins > R_READ_SPINS {
                return Err(TxInterrupt::Restart);
            }
            if spins.is_multiple_of(32) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl TxnOps for ROps<'_> {
    fn read(&mut self, v: VertexId, addr: Addr) -> Result<u64, TxInterrupt> {
        self.reads += 1;
        self.snapshot_read(v, addr)
    }

    fn write(&mut self, _v: VertexId, _addr: Addr, _val: u64) -> Result<(), TxInterrupt> {
        // Declared-purity violation: abort the R attempt so the host
        // scheduler can demote the body to its ordinary path. Nothing is
        // held, so "rollback" is free.
        self.wrote = true;
        Err(TxInterrupt::Restart)
    }
}

/// Run `body` on the snapshot-read path until it commits, user-aborts, is
/// health-stopped, or must be demoted. Shared by every scheduler's
/// [`TxnWorker::execute_hinted`] `read_only` prologue and by the
/// standalone [`ReadMode`] scheduler.
///
/// Holds nothing, ever: every exit (including panic re-raise) leaves no
/// lock, token, or hardware transaction behind.
pub fn run_read_only(
    sys: &TxnSystem,
    id: u32,
    stats: &mut SchedStats,
    health: &HealthHandle,
    max_attempts: u32,
    body: &mut TxnBody<'_>,
) -> RRun {
    let obs: ObsHandle = sys.observer_handle();
    let mut attempts = 0u32;
    loop {
        // Attempt boundary: nothing is held, so a stopped job just leaves.
        if health.checkpoint().is_some() {
            stats.health_stops += 1;
            return RRun::HealthStopped { attempts };
        }
        attempts += 1;
        obs.attempt_begin(id);
        let mut ops = ROps {
            sys,
            snap: sys.read_snapshot(),
            reads: 0,
            wrote: false,
        };
        let res = obs.run_body(&mut ops, id, body);
        let (reads, wrote, snap) = (ops.reads, ops.wrote, ops.snap);
        stats.reads += reads;
        match res {
            Ok(()) if !wrote => {
                // Every read validated against `snap`: serialize there.
                obs.commit_ticketed(id, || snap);
                stats.commits += 1;
                stats.r_commits += 1;
                health.note_commit();
                return RRun::Committed { attempts };
            }
            // A body that swallowed the write's interrupt still violated
            // the declaration; its reads may also be fractured now, so
            // nothing it produced is usable. Demote.
            Ok(()) => {
                obs.abort(id, false);
                return RRun::Demoted {
                    attempts,
                    wrote: true,
                };
            }
            Err(TxInterrupt::Restart) if wrote => {
                obs.abort(id, false);
                return RRun::Demoted {
                    attempts,
                    wrote: true,
                };
            }
            Err(TxInterrupt::Restart) => {
                stats.restarts += 1;
                stats.r_retries += 1;
                health.note_restart();
                obs.abort(id, false);
                if attempts >= max_attempts {
                    return RRun::Demoted {
                        attempts,
                        wrote: false,
                    };
                }
                backoff(attempts, id);
            }
            Err(TxInterrupt::UserAbort) => {
                stats.user_aborts += 1;
                obs.abort(id, true);
                return RRun::UserAborted { attempts };
            }
            Err(TxInterrupt::Panicked) => {
                stats.panics += 1;
                obs.abort(id, false);
                crate::obs::resume_body_panic();
            }
        }
    }
}

/// The shared `read_only` prologue for every read/write scheduler's
/// [`TxnWorker::execute_hinted`]: try the R-mode fast path first, with the
/// standard demotion budget.
///
/// `Ok(outcome)` means the R path finished the transaction (committed,
/// user-aborted, or health-stopped) — return it as-is. `Err(attempts)`
/// means the body must run on the scheduler's ordinary path; fold
/// `attempts` (0 when the hint was not `read_only`) into the final
/// outcome so demoted R attempts stay visible.
pub fn read_only_prologue(
    sys: &TxnSystem,
    id: u32,
    stats: &mut SchedStats,
    health: &HealthHandle,
    hint: TxnHint,
    body: &mut TxnBody<'_>,
) -> Result<TxnOutcome, u32> {
    if !hint.read_only {
        return Err(0);
    }
    match run_read_only(sys, id, stats, health, R_DEMOTE_ATTEMPTS, body) {
        RRun::Committed { attempts } => Ok(TxnOutcome {
            committed: true,
            attempts,
        }),
        RRun::UserAborted { attempts } | RRun::HealthStopped { attempts } => Ok(TxnOutcome {
            committed: false,
            attempts,
        }),
        RRun::Demoted { attempts, .. } => Err(attempts),
    }
}

/// The standalone R-mode scheduler: every transaction runs on the
/// snapshot-read path, whatever its hint says.
///
/// Useful for dedicated read-serving threads over a graph other schedulers
/// mutate. Bodies must be pure — a [`TxnOps::write`] panics (there is no
/// ordinary path to demote to); route mixed workloads through a
/// read/write scheduler with [`TxnHint::read_only`] instead.
pub struct ReadMode {
    sys: Arc<TxnSystem>,
}

impl ReadMode {
    /// Create the scheduler over a shared system.
    pub fn new(sys: Arc<TxnSystem>) -> Self {
        ReadMode { sys }
    }
}

impl GraphScheduler for ReadMode {
    type Worker = RWorker;

    fn worker(&self) -> RWorker {
        let id = self.sys.new_worker_id();
        RWorker {
            id,
            health: self.sys.health_handle(id),
            sys: Arc::clone(&self.sys),
            stats: SchedStats::default(),
        }
    }

    fn name(&self) -> &'static str {
        "R"
    }
}

/// Per-thread R-mode execution: see [`ReadMode`].
pub struct RWorker {
    id: u32,
    health: HealthHandle,
    sys: Arc<TxnSystem>,
    stats: SchedStats,
}

impl TxnWorker for RWorker {
    fn execute_hinted(&mut self, _hint: TxnHint, body: &mut TxnBody<'_>) -> TxnOutcome {
        // No demotion budget: a pure reader under writer churn keeps
        // re-pinning (with backoff) — it can never deadlock anyone.
        match run_read_only(
            &self.sys,
            self.id,
            &mut self.stats,
            &self.health,
            u32::MAX,
            body,
        ) {
            RRun::Committed { attempts } => TxnOutcome {
                committed: true,
                attempts,
            },
            RRun::UserAborted { attempts } | RRun::HealthStopped { attempts } => TxnOutcome {
                committed: false,
                attempts,
            },
            RRun::Demoted { .. } => panic!(
                "transaction body wrote under the standalone R-mode scheduler; \
                 declared-pure bodies must not call TxnOps::write — use a \
                 read/write scheduler with TxnHint::read_only for mixed bodies"
            ),
        }
    }

    fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn take_stats(&mut self) -> SchedStats {
        std::mem::take(&mut self.stats)
    }

    fn health(&self) -> Option<&HealthHandle> {
        Some(&self.health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpl::TwoPhaseLocking;
    use tufast_htm::MemoryLayout;

    fn setup(n: usize) -> (Arc<TxnSystem>, tufast_htm::MemRegion) {
        let mut layout = MemoryLayout::new();
        let data = layout.alloc("data", n as u64);
        let sys = TxnSystem::with_defaults(n, layout);
        (sys, data)
    }

    #[test]
    fn pure_reads_commit_and_count_on_the_fast_path() {
        let (sys, data) = setup(4);
        for i in 0..4 {
            sys.mem().store_direct(data.addr(i), 10 + i);
        }
        let sched = ReadMode::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let mut sum = 0;
        let out = w.execute_hinted(TxnHint::read_only(8), &mut |ops| {
            sum = 0;
            for i in 0..4u32 {
                sum += ops.read(i, data.addr(i.into()))?;
            }
            Ok(())
        });
        assert!(out.committed);
        assert_eq!(out.attempts, 1);
        assert_eq!(sum, 10 + 11 + 12 + 13);
        let s = w.take_stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.r_commits, 1);
        assert_eq!(s.r_retries, 0);
        assert_eq!(s.reads, 4);
    }

    #[test]
    fn pure_reads_take_no_locks_and_never_tick_the_clock() {
        let (sys, data) = setup(2);
        sys.mem().store_direct(data.addr(0), 77);
        let sched = ReadMode::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let clock_before = sys.mem().clock_now_pub();
        let lock_words: Vec<u64> = (0..2)
            .map(|v| sys.mem().load_direct(sys.locks().addr(v)))
            .collect();
        for _ in 0..100 {
            let out = w.execute_hinted(TxnHint::read_only(4), &mut |ops| {
                ops.read(0, data.addr(0))?;
                ops.read(1, data.addr(1))?;
                Ok(())
            });
            assert!(out.committed);
        }
        // Every lock acquisition, direct store, and HTM commit ticks the
        // global clock; an unchanged clock proves 100 pure-read
        // transactions acquired nothing and wrote nothing.
        assert_eq!(sys.mem().clock_now_pub(), clock_before);
        for v in 0..2u32 {
            assert_eq!(
                sys.mem().load_direct(sys.locks().addr(v)),
                lock_words[v as usize],
                "vertex {v} lock word moved under a pure reader"
            );
        }
        assert_eq!(w.take_stats().r_commits, 100);
    }

    #[test]
    #[should_panic(expected = "declared-pure bodies must not call TxnOps::write")]
    fn standalone_r_worker_rejects_writes() {
        let (sys, data) = setup(1);
        let sched = ReadMode::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let _ = w.execute_hinted(TxnHint::read_only(2), &mut |ops| {
            ops.write(0, data.addr(0), 1)?;
            Ok(())
        });
    }

    #[test]
    fn read_write_scheduler_demotes_writing_bodies() {
        let (sys, data) = setup(1);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        // Declared read-only, but the body writes: the R attempt aborts
        // and the body re-runs (and commits) on the ordinary 2PL path.
        let out = w.execute_hinted(TxnHint::read_only(2), &mut |ops| {
            let v = ops.read(0, data.addr(0))?;
            ops.write(0, data.addr(0), v + 5)?;
            Ok(())
        });
        assert!(out.committed);
        assert!(out.attempts >= 2, "one demoted R attempt plus the 2PL run");
        assert_eq!(sys.mem().load_direct(data.addr(0)), 5);
        let s = w.take_stats();
        assert_eq!(s.r_commits, 0);
        assert_eq!(s.commits, 1);
    }

    #[test]
    fn snapshot_rejects_lines_published_past_the_pin() {
        // Deterministic stale-snapshot exercise: the body's first read
        // pins, then a "writer" (direct store) publishes past the pin
        // before the second read; the attempt must re-pin and the retry
        // must observe both new values.
        let (sys, data) = setup(2);
        sys.mem().store_direct(data.addr(0), 1);
        sys.mem().store_direct(data.addr(1), 1);
        let sched = ReadMode::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let mut poked = false;
        let mut seen = (0, 0);
        let out = w.execute_hinted(TxnHint::read_only(4), &mut |ops| {
            let a = ops.read(0, data.addr(0))?;
            if !poked {
                poked = true;
                // data lives line-aligned: addr(1) shares line 0 with
                // addr(0) only if within the same 8-word line — use a
                // store to addr(1) to republish its line past the pin.
                sys.mem().store_direct(data.addr(1), 2);
            }
            let b = ops.read(1, data.addr(1))?;
            seen = (a, b);
            Ok(())
        });
        assert!(out.committed);
        assert!(out.attempts >= 2, "the poked attempt must re-pin");
        assert_eq!(seen, (1, 2));
        assert!(w.take_stats().r_retries >= 1);
    }

    #[test]
    fn readers_race_2pl_writers_without_fractures() {
        // A writer keeps the pair (a, a+1) invariant through 2PL in-place
        // writes; concurrent snapshot readers must never observe a torn
        // pair — the in-place uncommitted values are exposed at stale
        // line versions, so this exercises the republish-after-ticket
        // fix and the writer-presence bracket.
        let (sys, data) = setup(16);
        let tpl = TwoPhaseLocking::new(Arc::clone(&sys));
        let rmode = ReadMode::new(Arc::clone(&sys));
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut w = tpl.worker();
                for round in 1..400u64 {
                    for pair in 0..8u32 {
                        let base = u64::from(pair) * 2;
                        w.execute(4, &mut |ops| {
                            ops.write(pair, data.addr(base), round)?;
                            ops.write(pair, data.addr(base + 1), round + 1)?;
                            Ok(())
                        });
                    }
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            for _ in 0..2 {
                s.spawn(|| {
                    let mut r = rmode.worker();
                    // At least one full pass even if the writer already
                    // finished, so `r_commits > 0` holds below.
                    loop {
                        for pair in 0..8u32 {
                            let base = u64::from(pair) * 2;
                            let mut got = (0, 0);
                            let out = r.execute_hinted(TxnHint::read_only(4), &mut |ops| {
                                got.0 = ops.read(pair, data.addr(base))?;
                                got.1 = ops.read(pair, data.addr(base + 1))?;
                                Ok(())
                            });
                            assert!(out.committed);
                            assert!(
                                (got.0 == 0 && got.1 == 0) || got.1 == got.0 + 1,
                                "fractured read: pair {pair} = {got:?}"
                            );
                        }
                        if stop.load(std::sync::atomic::Ordering::Acquire) {
                            break;
                        }
                    }
                    assert!(r.take_stats().r_commits > 0);
                });
            }
        });
    }
}
