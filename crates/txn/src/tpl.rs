//! Strict two-phase locking — the paper's pessimistic baseline and the
//! protocol of TuFast's L mode (Algorithm 3).
//!
//! Reads take shared vertex locks, writes take exclusive ones (in-place,
//! with an undo log); all locks are released at commit (strictness). A
//! blocked worker registers a wait-for edge; cycles — or bounded-wait
//! timeouts on anonymous reader-held locks — make the requester the victim:
//! it rolls back, releases everything, and restarts.
//!
//! With [`ordered`](TwoPhaseLocking::new_ordered), deadlock *prevention*
//! replaces detection (paper §IV-E): the caller promises that bodies
//! acquire vertices in ascending id order (natural for "iterate my
//! neighbours" transactions over sorted adjacency), so no cycle can form
//! and the wait-for bookkeeping is skipped.

use std::sync::Arc;
use std::time::Instant;

use tufast_htm::{Addr, WordMap};

use crate::deadlock::WaitOutcome;
use crate::faults::FaultHandle;
use crate::health::HealthHandle;
use crate::system::TxnSystem;
use crate::traits::{
    backoff, GraphScheduler, SchedStats, TxInterrupt, TxnBody, TxnHint, TxnOps, TxnOutcome,
    TxnWorker,
};
use crate::VertexId;

/// Lock modes recorded in the worker's held-lock table.
const HELD_SHARED: u64 = 1;
const HELD_EXCL: u64 = 2;
const HELD_EXCL_WROTE: u64 = 3;

/// The 2PL scheduler.
pub struct TwoPhaseLocking {
    sys: Arc<TxnSystem>,
    ordered: bool,
}

impl TwoPhaseLocking {
    /// 2PL with deadlock detection.
    pub fn new(sys: Arc<TxnSystem>) -> Self {
        TwoPhaseLocking {
            sys,
            ordered: false,
        }
    }

    /// 2PL with ordered-acquisition deadlock *prevention*. Correct only for
    /// bodies that touch vertices in ascending id order.
    pub fn new_ordered(sys: Arc<TxnSystem>) -> Self {
        TwoPhaseLocking { sys, ordered: true }
    }
}

impl GraphScheduler for TwoPhaseLocking {
    type Worker = TplWorker;

    fn worker(&self) -> TplWorker {
        let id = self.sys.new_worker_id();
        TplWorker {
            id,
            faults: self.sys.fault_handle(id),
            health: self.sys.health_handle(id),
            sys: Arc::clone(&self.sys),
            ordered: self.ordered,
            held: WordMap::with_capacity(32),
            held_order: Vec::with_capacity(32),
            undo: Vec::with_capacity(32),
            stats: SchedStats::default(),
        }
    }

    fn name(&self) -> &'static str {
        if self.ordered {
            "2PL-ordered"
        } else {
            "2PL"
        }
    }
}

/// Per-thread 2PL execution state.
pub struct TplWorker {
    id: u32,
    sys: Arc<TxnSystem>,
    ordered: bool,
    faults: FaultHandle,
    health: HealthHandle,
    /// vertex id → HELD_* mode.
    held: WordMap,
    held_order: Vec<VertexId>,
    undo: Vec<(Addr, u64)>,
    stats: SchedStats,
}

impl TplWorker {
    #[inline]
    fn held_mode(&self, v: VertexId) -> Option<u64> {
        self.held.get(Addr(u64::from(v)))
    }

    #[inline]
    fn set_held(&mut self, v: VertexId, mode: u64) {
        if self.held.insert(Addr(u64::from(v)), mode) {
            self.held_order.push(v);
        }
    }

    /// The instant an anonymous wait started — sampled only when the
    /// configured budget has a wall-clock deadline.
    #[inline]
    fn wait_start(&self) -> Option<Instant> {
        self.sys
            .wait_table()
            .config()
            .deadline
            .map(|_| Instant::now())
    }

    /// Blocking shared acquisition with deadlock handling.
    fn acquire_shared(&mut self, v: VertexId) -> Result<(), TxInterrupt> {
        if self.faults.lock_acquisition_fails() {
            // Injected acquisition failure: indistinguishable from a
            // bounded-wait victimization.
            self.stats.injected_faults += 1;
            return Err(TxInterrupt::Restart);
        }
        let mem = self.sys.mem();
        let locks = self.sys.locks();
        let mut anon_attempt = 0u32;
        let started = self.wait_start();
        // The bounded-wait retry below makes this a *blocking*
        // acquisition as far as lock ordering is concerned.
        // tufast-lint: lock-acquire(vertex_lock)
        loop {
            match locks.try_shared(mem, v) {
                Ok(_) => return Ok(()),
                Err(pre) => {
                    // A shared acquisition can only fail on a writer; an
                    // anonymous (reader-held) word admits more readers. A
                    // writerless failure here would mean lock-word
                    // corruption, so surface it loudly.
                    let holder = pre
                        .writer()
                        .expect("shared acquisition fails only on a writer");
                    if holder == self.id {
                        unreachable!("lock table says we already hold {v} exclusively");
                    }
                    if !self.ordered && self.sys.wait_table().register_and_check(self.id, holder) {
                        self.stats.deadlock_victims += 1;
                        return Err(TxInterrupt::Restart);
                    }
                    let outcome = self.sys.wait_table().bounded_anonymous_wait(
                        self.id,
                        anon_attempt,
                        started,
                    );
                    if !self.ordered {
                        self.sys.wait_table().clear(self.id);
                    }
                    if outcome == WaitOutcome::Victim {
                        self.stats.anon_wait_victims += 1;
                        return Err(TxInterrupt::Restart);
                    }
                    anon_attempt += 1;
                }
            }
        }
    }

    /// Blocking exclusive acquisition with deadlock handling.
    fn acquire_exclusive(&mut self, v: VertexId) -> Result<(), TxInterrupt> {
        if self.faults.lock_acquisition_fails() {
            self.stats.injected_faults += 1;
            return Err(TxInterrupt::Restart);
        }
        let mem = self.sys.mem();
        let locks = self.sys.locks();
        let mut anon_attempt = 0u32;
        let started = self.wait_start();
        // The bounded-wait retry below makes this a *blocking*
        // acquisition as far as lock ordering is concerned.
        // tufast-lint: lock-acquire(vertex_lock)
        loop {
            match locks.try_exclusive(mem, v, self.id) {
                Ok(_) => return Ok(()),
                Err(pre) => {
                    if let Some(holder) = pre.writer() {
                        debug_assert_ne!(holder, self.id, "double exclusive acquisition of {v}");
                        if !self.ordered
                            && self.sys.wait_table().register_and_check(self.id, holder)
                        {
                            self.stats.deadlock_victims += 1;
                            return Err(TxInterrupt::Restart);
                        }
                    }
                    // Readers are anonymous either way: bounded wait.
                    let outcome = self.sys.wait_table().bounded_anonymous_wait(
                        self.id,
                        anon_attempt,
                        started,
                    );
                    if !self.ordered {
                        self.sys.wait_table().clear(self.id);
                    }
                    if outcome == WaitOutcome::Victim {
                        self.stats.anon_wait_victims += 1;
                        return Err(TxInterrupt::Restart);
                    }
                    anon_attempt += 1;
                }
            }
        }
    }

    /// Undo in-place writes (reverse order) and release all locks.
    fn rollback(&mut self) {
        let mem = self.sys.mem();
        for &(addr, old) in self.undo.iter().rev() {
            mem.store_direct(addr, old);
        }
        self.undo.clear();
        self.release_all(true);
    }

    /// Release all locks; `undone` tells whether exclusive writes were
    /// rolled back (version still bumps — the data changed twice).
    fn release_all(&mut self, undone: bool) {
        let mem = self.sys.mem();
        let locks = self.sys.locks();
        for &v in self.held_order.iter().rev() {
            match self
                .held
                .get(Addr(u64::from(v)))
                .expect("held table out of sync")
            {
                HELD_SHARED => locks.unlock_shared(mem, v),
                HELD_EXCL => locks.unlock_exclusive(mem, v, self.id, false),
                HELD_EXCL_WROTE => locks.unlock_exclusive(mem, v, self.id, true),
                // An undone write still published intermediate values that
                // optimistic readers may have seen; bump regardless.
                _ => unreachable!("bad held mode"),
            }
        }
        let _ = undone;
        self.held.clear();
        self.held_order.clear();
    }
}

impl TxnOps for TplWorker {
    fn read(&mut self, v: VertexId, addr: Addr) -> Result<u64, TxInterrupt> {
        self.stats.reads += 1;
        if self.held_mode(v).is_none() {
            self.acquire_shared(v)?;
            self.set_held(v, HELD_SHARED);
        }
        Ok(self.sys.mem().load_direct(addr))
    }

    fn write(&mut self, v: VertexId, addr: Addr, val: u64) -> Result<(), TxInterrupt> {
        self.stats.writes += 1;
        match self.held_mode(v) {
            Some(HELD_EXCL) | Some(HELD_EXCL_WROTE) => {}
            Some(HELD_SHARED) => {
                // Upgrade; failure risks the classic upgrade deadlock, so
                // the requester immediately becomes the victim.
                if !self.sys.locks().try_upgrade(self.sys.mem(), v, self.id) {
                    self.stats.deadlock_victims += 1;
                    return Err(TxInterrupt::Restart);
                }
                self.set_held(v, HELD_EXCL);
            }
            None => {
                self.acquire_exclusive(v)?;
                self.set_held(v, HELD_EXCL);
            }
            Some(_) => unreachable!("bad held mode"),
        }
        let mem = self.sys.mem();
        self.undo.push((addr, mem.load_direct(addr)));
        mem.store_direct(addr, val);
        self.set_held(v, HELD_EXCL_WROTE);
        Ok(())
    }
}

impl TplWorker {
    /// Exempt (or re-subject) this worker from fault injection. The
    /// TuFast serial-fallback path exempts its stop-the-world commit so
    /// the liveness backstop cannot itself be sabotaged.
    pub fn set_fault_exempt(&mut self, exempt: bool) {
        self.faults.set_exempt(exempt);
    }

    /// [`execute`](TxnWorker::execute) with an attempt budget: gives up
    /// (returning `committed: false` with everything rolled back and all
    /// locks released) after `max_attempts` failed attempts instead of
    /// retrying forever. The TuFast router uses this to bound its L-mode
    /// phase before escalating to the global serial-fallback token.
    pub fn execute_bounded(&mut self, max_attempts: u32, body: &mut TxnBody<'_>) -> TxnOutcome {
        let obs = self.sys.observer_handle();
        let id = self.id;
        let mut attempts = 0u32;
        loop {
            // Attempt boundary: the previous attempt rolled back and
            // released every lock, so a stopped job unwinds cleanly here.
            if self.health.checkpoint().is_some() {
                self.stats.health_stops += 1;
                return TxnOutcome {
                    committed: false,
                    attempts,
                };
            }
            attempts += 1;
            obs.attempt_begin(id);
            match obs.run_body(self, id, body) {
                Ok(()) => {
                    // Strict 2PL commit: writes are already in place; drop
                    // the undo log and release everything.
                    obs.pre_commit(id);
                    let mem = self.sys.mem();
                    // Ticket while every touched lock is still held: no
                    // conflicting writer can publish between the tick and
                    // our (already in-place) writes becoming permanent.
                    obs.commit_ticketed(id, || mem.clock_tick_pub());
                    // In-place stores left line versions predating the
                    // ticket; republish them at post-ticket versions while
                    // the locks are still held, or a snapshot reader pinned
                    // mid-commit could accept a fractured mix of old and
                    // new values (see `rmode` module docs).
                    mem.republish_lines(self.undo.iter().map(|&(a, _)| a));
                    self.undo.clear();
                    self.release_all(false);
                    self.stats.commits += 1;
                    self.health.note_commit();
                    self.sys.wait_table().record_commit(id);
                    return TxnOutcome {
                        committed: true,
                        attempts,
                    };
                }
                Err(TxInterrupt::Restart) => {
                    self.rollback();
                    self.stats.restarts += 1;
                    self.health.note_restart();
                    obs.abort(id, false);
                    if attempts >= max_attempts {
                        return TxnOutcome {
                            committed: false,
                            attempts,
                        };
                    }
                    backoff(attempts, self.id);
                }
                Err(TxInterrupt::UserAbort) => {
                    self.rollback();
                    self.stats.user_aborts += 1;
                    obs.abort(id, true);
                    return TxnOutcome {
                        committed: false,
                        attempts,
                    };
                }
                Err(TxInterrupt::Panicked) => {
                    // The body panicked mid-transaction: undo its in-place
                    // writes and release every lock, then let the panic
                    // continue on this thread. Peers are unaffected.
                    self.rollback();
                    self.stats.panics += 1;
                    obs.abort(id, false);
                    crate::obs::resume_body_panic();
                }
            }
        }
    }
}

impl TxnWorker for TplWorker {
    fn execute_hinted(&mut self, hint: TxnHint, body: &mut TxnBody<'_>) -> TxnOutcome {
        let prior = match crate::rmode::read_only_prologue(
            &self.sys,
            self.id,
            &mut self.stats,
            &self.health,
            hint,
            body,
        ) {
            Ok(out) => return out,
            Err(prior) => prior,
        };
        let out = self.execute_bounded(u32::MAX, body);
        TxnOutcome {
            committed: out.committed,
            attempts: out.attempts + prior,
        }
    }

    fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn take_stats(&mut self) -> SchedStats {
        std::mem::take(&mut self.stats)
    }

    fn health(&self) -> Option<&HealthHandle> {
        Some(&self.health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tufast_htm::MemoryLayout;

    fn bank(n_accounts: usize) -> (Arc<TxnSystem>, tufast_htm::MemRegion) {
        let mut layout = MemoryLayout::new();
        let accounts = layout.alloc("accounts", n_accounts as u64);
        let sys = TxnSystem::with_defaults(n_accounts, layout);
        for i in 0..n_accounts as u64 {
            sys.mem().store_direct(accounts.addr(i), 100);
        }
        (sys, accounts)
    }

    #[test]
    fn single_threaded_transfer() {
        let (sys, acc) = bank(2);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let out = w.execute(4, &mut |ops| {
            let a = ops.read(0, acc.addr(0))?;
            let b = ops.read(1, acc.addr(1))?;
            ops.write(0, acc.addr(0), a - 30)?;
            ops.write(1, acc.addr(1), b + 30)?;
            Ok(())
        });
        assert!(out.committed);
        assert_eq!(out.attempts, 1);
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 70);
        assert_eq!(sys.mem().load_direct(acc.addr(1)), 130);
        // All locks released.
        assert!(sys.locks().peek(sys.mem(), 0).is_free());
        assert!(sys.locks().peek(sys.mem(), 1).is_free());
    }

    #[test]
    fn user_abort_rolls_back_in_place_writes() {
        let (sys, acc) = bank(1);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let out = w.execute(2, &mut |ops| {
            ops.write(0, acc.addr(0), 0)?;
            Err(ops.user_abort())
        });
        assert!(!out.committed);
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 100);
        assert!(sys.locks().peek(sys.mem(), 0).is_free());
        assert_eq!(w.stats().user_aborts, 1);
    }

    #[test]
    fn conflicting_transfers_preserve_total() {
        let n = 8;
        let (sys, acc) = bank(n);
        let sched = Arc::new(TwoPhaseLocking::new(Arc::clone(&sys)));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let mut w = sched.worker();
                    for i in 0..300u64 {
                        let from = ((t + i) % n as u64) as VertexId;
                        let to = ((t + i * 7 + 1) % n as u64) as VertexId;
                        if from == to {
                            continue;
                        }
                        w.execute(4, &mut |ops| {
                            let a = ops.read(from, acc.addr(u64::from(from)))?;
                            let b = ops.read(to, acc.addr(u64::from(to)))?;
                            ops.write(from, acc.addr(u64::from(from)), a.wrapping_sub(1))?;
                            ops.write(to, acc.addr(u64::from(to)), b.wrapping_add(1))?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: u64 = (0..n as u64)
            .map(|i| sys.mem().load_direct(acc.addr(i)))
            .sum();
        assert_eq!(total, 100 * n as u64);
        for v in 0..n as u32 {
            assert!(sys.locks().peek(sys.mem(), v).is_free(), "lock {v} leaked");
        }
    }

    #[test]
    fn deadlock_prone_pattern_terminates() {
        // Two accounts, workers transferring in opposite orders — the
        // classic deadlock. Detection/victimisation must keep progress.
        let (sys, acc) = bank(2);
        let sched = Arc::new(TwoPhaseLocking::new(Arc::clone(&sys)));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let mut w = sched.worker();
                    let (x, y) = if t % 2 == 0 { (0u32, 1u32) } else { (1, 0) };
                    for _ in 0..200 {
                        let out = w.execute(4, &mut |ops| {
                            let a = ops.read(x, acc.addr(u64::from(x)))?;
                            ops.write(x, acc.addr(u64::from(x)), a.wrapping_add(1))?;
                            let b = ops.read(y, acc.addr(u64::from(y)))?;
                            ops.write(y, acc.addr(u64::from(y)), b.wrapping_sub(1))?;
                            Ok(())
                        });
                        assert!(out.committed);
                    }
                });
            }
        });
        let a = sys.mem().load_direct(acc.addr(0));
        let b = sys.mem().load_direct(acc.addr(1));
        assert_eq!(a.wrapping_add(b), 200);
    }

    #[test]
    fn repeated_reads_take_one_lock() {
        let (sys, acc) = bank(1);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        w.execute(2, &mut |ops| {
            for _ in 0..10 {
                ops.read(0, acc.addr(0))?;
            }
            Ok(())
        });
        assert_eq!(w.stats().reads, 10);
        assert!(sys.locks().peek(sys.mem(), 0).is_free());
    }

    #[test]
    fn read_then_write_upgrades() {
        let (sys, acc) = bank(1);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let out = w.execute(2, &mut |ops| {
            let v = ops.read(0, acc.addr(0))?;
            ops.write(0, acc.addr(0), v + 1)
        });
        assert!(out.committed);
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 101);
        assert_eq!(sys.locks().peek(sys.mem(), 0).version(), 1);
    }

    #[test]
    fn panicking_body_releases_locks_and_reraises() {
        let (sys, acc) = bank(2);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.execute(4, &mut |ops| {
                ops.write(0, acc.addr(0), 1)?;
                panic!("body bug");
            })
        }));
        assert!(caught.is_err(), "the panic must still surface");
        assert_eq!(w.stats().panics, 1);
        // The in-place write was undone and every lock released.
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 100);
        assert!(sys.locks().peek(sys.mem(), 0).is_free());
        // The worker remains usable afterwards.
        let out = w.execute(2, &mut |ops| {
            let v = ops.read(0, acc.addr(0))?;
            ops.write(0, acc.addr(0), v + 1)
        });
        assert!(out.committed);
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 101);
    }

    #[test]
    fn bounded_execution_gives_up_cleanly() {
        let (sys, acc) = bank(1);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        // Another worker holds vertex 0 exclusively for the whole test.
        let blocker = sys.new_worker_id();
        sys.locks().try_exclusive(sys.mem(), 0, blocker).unwrap();
        let out = w.execute_bounded(2, &mut |ops| {
            ops.read(0, acc.addr(0))?;
            Ok(())
        });
        assert!(!out.committed);
        assert_eq!(out.attempts, 2);
        assert!(w.stats().anon_wait_victims >= 2);
        // Once the blocker releases, the same worker commits normally.
        sys.locks().unlock_exclusive(sys.mem(), 0, blocker, false);
        let out = w.execute(2, &mut |ops| {
            ops.read(0, acc.addr(0))?;
            Ok(())
        });
        assert!(out.committed);
    }

    #[test]
    fn wall_clock_deadline_victimises_through_the_scheduler() {
        use crate::deadlock::WaitConfig;
        use crate::system::SystemConfig;
        use std::time::{Duration, Instant};
        // An effectively unbounded spin budget: only the wall-clock
        // deadline can end the wait, so this proves the scheduler threads
        // the start instant through to the wait table.
        let mut layout = MemoryLayout::new();
        let acc = layout.alloc("accounts", 1);
        let sys = TxnSystem::build(
            1,
            layout,
            SystemConfig {
                wait: WaitConfig {
                    spins: u32::MAX,
                    deadline: Some(Duration::from_millis(5)),
                },
                ..SystemConfig::default()
            },
        );
        sys.mem().store_direct(acc.addr(0), 100);
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let blocker = sys.new_worker_id();
        sys.locks().try_exclusive(sys.mem(), 0, blocker).unwrap();
        let t0 = Instant::now();
        let out = w.execute_bounded(1, &mut |ops| {
            ops.read(0, acc.addr(0))?;
            Ok(())
        });
        assert!(!out.committed);
        assert_eq!(w.stats().anon_wait_victims, 1);
        assert!(
            t0.elapsed() >= Duration::from_millis(5),
            "gave up before the deadline"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "deadline never fired"
        );
        // Once the blocker releases, the same worker commits normally.
        sys.locks().unlock_exclusive(sys.mem(), 0, blocker, false);
        let out = w.execute(1, &mut |ops| {
            ops.read(0, acc.addr(0))?;
            Ok(())
        });
        assert!(out.committed);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_lock_failures_respect_budget_and_exemption() {
        use crate::faults::{FaultPlan, FaultSpec};
        let (sys, acc) = bank(1);
        sys.set_fault_plan(Some(FaultPlan::new(FaultSpec {
            lock_fail_permille: 1000,
            ..FaultSpec::default()
        })));
        let sched = TwoPhaseLocking::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let out = w.execute_bounded(3, &mut |ops| {
            ops.read(0, acc.addr(0))?;
            Ok(())
        });
        assert!(!out.committed, "100% lock-fail injection must starve 2PL");
        assert_eq!(w.stats().injected_faults, 3);
        assert!(sys.locks().peek(sys.mem(), 0).is_free());
        // Exemption (the serial-token path) bypasses the plan entirely.
        w.set_fault_exempt(true);
        let out = w.execute(2, &mut |ops| {
            ops.read(0, acc.addr(0))?;
            Ok(())
        });
        assert!(out.committed);
    }

    #[test]
    fn ordered_mode_commits_under_contention() {
        let (sys, acc) = bank(4);
        let sched = Arc::new(TwoPhaseLocking::new_ordered(Arc::clone(&sys)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let mut w = sched.worker();
                    for _ in 0..200 {
                        // Ascending-order access, as the mode requires.
                        w.execute(8, &mut |ops| {
                            for v in 0..4u32 {
                                let x = ops.read(v, acc.addr(u64::from(v)))?;
                                ops.write(v, acc.addr(u64::from(v)), x + 1)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        for v in 0..4u64 {
            assert_eq!(sys.mem().load_direct(acc.addr(v)), 100 + 800);
        }
    }
}
