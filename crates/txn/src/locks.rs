//! Per-vertex versioned reader–writer lock words.
//!
//! One 64-bit word per vertex, *stored inside the transactional memory* so
//! that hardware transactions can subscribe to lock state simply by reading
//! the word transactionally — the mechanism behind the paper's Algorithm 1
//! ("Try lock L\[v\] … if fails then ABORT").
//!
//! Word layout:
//!
//! ```text
//!  63..32     31..16            15..0
//! +---------+-----------------+---------------+
//! | version | writer (id + 1) | reader count  |
//! +---------+-----------------+---------------+
//! ```
//!
//! The version field counts *exclusive unlocks that followed a write* (plus
//! transactional bumps by TuFast's H mode) — it is the per-vertex commit
//! version that OCC-style validation checks.
//!
//! All mutations go through [`TxMemory`]'s strongly-isolated direct
//! read-modify-write, which also bumps the underlying cache-line version —
//! so acquiring any vertex lock aborts hardware transactions subscribed to
//! it, exactly like the cache-line invalidation on real TSX.

use tufast_htm::{Addr, MemRegion, MemoryLayout, PaddedRegion, TxMemory};

use crate::VertexId;

const READERS_MASK: u64 = 0xFFFF;
const WRITER_SHIFT: u32 = 16;
const WRITER_MASK: u64 = 0xFFFF;
const VERSION_SHIFT: u32 = 32;

/// Decoded view of a vertex lock word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockWord(pub u64);

impl LockWord {
    /// Number of shared holders.
    #[inline]
    pub fn readers(self) -> u32 {
        (self.0 & READERS_MASK) as u32
    }

    /// Exclusive holder's worker id, if any.
    #[inline]
    pub fn writer(self) -> Option<u32> {
        let w = ((self.0 >> WRITER_SHIFT) & WRITER_MASK) as u32;
        (w != 0).then(|| w - 1)
    }

    /// Per-vertex commit version.
    #[inline]
    pub fn version(self) -> u32 {
        (self.0 >> VERSION_SHIFT) as u32
    }

    /// Whether no one holds the lock in any mode.
    #[inline]
    pub fn is_free(self) -> bool {
        self.0 & (READERS_MASK | (WRITER_MASK << WRITER_SHIFT)) == 0
    }

    /// Whether a shared acquisition would succeed.
    #[inline]
    pub fn shared_compatible(self) -> bool {
        self.writer().is_none()
    }

    #[inline]
    fn with_readers(self, r: u32) -> LockWord {
        debug_assert!(u64::from(r) <= READERS_MASK, "reader count overflow");
        LockWord((self.0 & !READERS_MASK) | u64::from(r))
    }

    #[inline]
    fn with_writer(self, w: Option<u32>) -> LockWord {
        let enc = w.map_or(0, |id| u64::from(id) + 1);
        debug_assert!(enc <= WRITER_MASK, "worker id overflow");
        LockWord((self.0 & !(WRITER_MASK << WRITER_SHIFT)) | (enc << WRITER_SHIFT))
    }

    /// The same word with the commit version advanced by one — used by
    /// TuFast's H mode, which bumps versions *transactionally*.
    #[inline]
    pub fn bumped(self) -> LockWord {
        LockWord(self.0.wrapping_add(1 << VERSION_SHIFT))
    }
}

/// The per-vertex lock array, living at a region of the shared memory.
///
/// In `packed` layout (the default, matching the paper) eight lock words
/// share a cache line; `padded` gives every vertex its own line, trading 8×
/// metadata memory for the elimination of false-sharing aborts — an
/// ablation measured by `tufast-bench`.
#[derive(Clone, Copy, Debug)]
pub struct VertexLocks {
    storage: Storage,
}

#[derive(Clone, Copy, Debug)]
enum Storage {
    Packed(MemRegion),
    Padded(PaddedRegion),
}

impl VertexLocks {
    /// Allocate a packed lock array for `n` vertices in `layout`.
    pub fn alloc(layout: &mut MemoryLayout, n: usize) -> Self {
        VertexLocks {
            storage: Storage::Packed(layout.alloc("vertex-locks", n as u64)),
        }
    }

    /// Allocate a padded (one line per vertex) lock array.
    pub fn alloc_padded(layout: &mut MemoryLayout, n: usize) -> Self {
        VertexLocks {
            storage: Storage::Padded(layout.alloc_padded("vertex-locks", n as u64)),
        }
    }

    /// Address of vertex `v`'s lock word.
    #[inline]
    pub fn addr(&self, v: VertexId) -> Addr {
        match self.storage {
            Storage::Packed(r) => r.addr(u64::from(v)),
            Storage::Padded(p) => p.addr(u64::from(v)),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> u64 {
        match self.storage {
            Storage::Packed(r) => r.len(),
            Storage::Padded(p) => p.len(),
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the lock word of `v`.
    #[inline]
    pub fn peek(&self, mem: &TxMemory, v: VertexId) -> LockWord {
        LockWord(mem.load_direct(self.addr(v)))
    }

    /// Try to acquire `v` in shared mode. Returns the pre-acquisition word;
    /// success iff it was [`shared_compatible`](LockWord::shared_compatible).
    #[inline]
    pub fn try_shared(&self, mem: &TxMemory, v: VertexId) -> Result<LockWord, LockWord> {
        let pre = LockWord(mem.rmw_direct(self.addr(v), |w| {
            let lw = LockWord(w);
            lw.shared_compatible()
                .then(|| lw.with_readers(lw.readers() + 1).0)
        }));
        if pre.shared_compatible() {
            Ok(pre)
        } else {
            Err(pre)
        }
    }

    /// Try to acquire `v` exclusively for `owner`. Success iff the lock was
    /// completely free.
    #[inline]
    pub fn try_exclusive(
        &self,
        mem: &TxMemory,
        v: VertexId,
        owner: u32,
    ) -> Result<LockWord, LockWord> {
        let pre = LockWord(mem.rmw_direct(self.addr(v), |w| {
            let lw = LockWord(w);
            lw.is_free().then(|| lw.with_writer(Some(owner)).0)
        }));
        if pre.is_free() {
            Ok(pre)
        } else {
            Err(pre)
        }
    }

    /// Try to upgrade a shared hold to exclusive. Succeeds only when the
    /// caller is the sole reader (otherwise upgrading can deadlock — the
    /// caller must release and restart).
    #[inline]
    pub fn try_upgrade(&self, mem: &TxMemory, v: VertexId, owner: u32) -> bool {
        let pre = LockWord(mem.rmw_direct(self.addr(v), |w| {
            let lw = LockWord(w);
            (lw.readers() == 1 && lw.writer().is_none())
                .then(|| lw.with_readers(0).with_writer(Some(owner)).0)
        }));
        pre.readers() == 1 && pre.writer().is_none()
    }

    /// Release a shared hold.
    #[inline]
    pub fn unlock_shared(&self, mem: &TxMemory, v: VertexId) {
        mem.rmw_direct(self.addr(v), |w| {
            let lw = LockWord(w);
            debug_assert!(
                lw.readers() > 0,
                "unlock_shared without a shared hold on {v}"
            );
            Some(lw.with_readers(lw.readers().saturating_sub(1)).0)
        });
    }

    /// Release an exclusive hold; `wrote` bumps the vertex commit version so
    /// optimistic validators notice the update.
    #[inline]
    pub fn unlock_exclusive(&self, mem: &TxMemory, v: VertexId, owner: u32, wrote: bool) {
        mem.rmw_direct(self.addr(v), |w| {
            let lw = LockWord(w);
            debug_assert_eq!(
                lw.writer(),
                Some(owner),
                "unlock_exclusive by non-owner on {v}"
            );
            let released = lw.with_writer(None);
            Some(if wrote {
                released.bumped().0
            } else {
                released.0
            })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<TxMemory>, VertexLocks) {
        let mut layout = MemoryLayout::new();
        let locks = VertexLocks::alloc(&mut layout, n);
        (Arc::new(TxMemory::new(&layout)), locks)
    }

    #[test]
    fn word_encoding_roundtrip() {
        let w = LockWord(0).with_readers(3).with_writer(Some(9));
        assert_eq!(w.readers(), 3);
        assert_eq!(w.writer(), Some(9));
        assert_eq!(w.version(), 0);
        let b = w.bumped();
        assert_eq!(b.version(), 1);
        assert_eq!(b.readers(), 3);
    }

    #[test]
    fn shared_excludes_exclusive() {
        let (mem, locks) = setup(4);
        assert!(locks.try_shared(&mem, 0).is_ok());
        assert!(locks.try_shared(&mem, 0).is_ok());
        assert!(locks.try_exclusive(&mem, 0, 1).is_err());
        locks.unlock_shared(&mem, 0);
        locks.unlock_shared(&mem, 0);
        assert!(locks.try_exclusive(&mem, 0, 1).is_ok());
    }

    #[test]
    fn exclusive_excludes_everything() {
        let (mem, locks) = setup(4);
        assert!(locks.try_exclusive(&mem, 2, 5).is_ok());
        assert!(locks.try_shared(&mem, 2).is_err());
        assert!(locks.try_exclusive(&mem, 2, 6).is_err());
        assert_eq!(locks.peek(&mem, 2).writer(), Some(5));
        locks.unlock_exclusive(&mem, 2, 5, false);
        assert!(locks.peek(&mem, 2).is_free());
    }

    #[test]
    fn version_bumps_only_on_writing_unlock() {
        let (mem, locks) = setup(1);
        locks.try_exclusive(&mem, 0, 1).unwrap();
        locks.unlock_exclusive(&mem, 0, 1, false);
        assert_eq!(locks.peek(&mem, 0).version(), 0);
        locks.try_exclusive(&mem, 0, 1).unwrap();
        locks.unlock_exclusive(&mem, 0, 1, true);
        assert_eq!(locks.peek(&mem, 0).version(), 1);
    }

    #[test]
    fn upgrade_requires_sole_reader() {
        let (mem, locks) = setup(1);
        locks.try_shared(&mem, 0).unwrap();
        locks.try_shared(&mem, 0).unwrap();
        assert!(!locks.try_upgrade(&mem, 0, 3));
        locks.unlock_shared(&mem, 0);
        assert!(locks.try_upgrade(&mem, 0, 3));
        assert_eq!(locks.peek(&mem, 0).writer(), Some(3));
        assert_eq!(locks.peek(&mem, 0).readers(), 0);
    }

    #[test]
    fn locks_are_independent_per_vertex() {
        let (mem, locks) = setup(16);
        assert!(locks.try_exclusive(&mem, 3, 1).is_ok());
        assert!(locks.try_exclusive(&mem, 4, 2).is_ok());
        assert!(locks.try_shared(&mem, 5).is_ok());
    }

    #[test]
    fn padded_layout_one_line_per_vertex() {
        let mut layout = MemoryLayout::new();
        let locks = VertexLocks::alloc_padded(&mut layout, 4);
        let mem = TxMemory::new(&layout);
        assert_ne!(locks.addr(0).line(), locks.addr(1).line());
        assert!(locks.try_exclusive(&mem, 1, 0).is_ok());
        assert!(locks.try_exclusive(&mem, 2, 0).is_ok());
    }

    #[test]
    fn concurrent_exclusive_acquisition_is_mutual() {
        let (mem, locks) = setup(1);
        let acquired = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let mem = &mem;
                let locks = &locks;
                let acquired = &acquired;
                s.spawn(move || {
                    for _ in 0..1000 {
                        if locks.try_exclusive(mem, 0, t).is_ok() {
                            let now = acquired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            assert_eq!(now, 0, "two writers inside the critical section");
                            acquired.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                            locks.unlock_exclusive(mem, 0, t, false);
                        }
                    }
                });
            }
        });
        assert!(locks.peek(&mem, 0).is_free());
    }
}
