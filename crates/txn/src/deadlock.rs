//! Deadlock handling for blocking lock acquisition (paper §IV-E).
//!
//! The paper's L mode detects deadlock by checking the wait-for
//! relationship; H and O modes never wait (they only *try* locks), so only
//! L-mode transactions participate. Because each blocked worker waits for
//! at most one lock at a time, the wait-for graph is functional (out-degree
//! ≤ 1) and cycle detection reduces to chain-following from the lock's
//! current holder.
//!
//! Two practical wrinkles:
//!
//! * A lock held in *shared* mode has anonymous holders (the word stores
//!   only a count), so no precise edge can be recorded; waiting on readers
//!   falls back to a bounded wait ([`WaitConfig`]: spins plus an optional
//!   wall-clock deadline), after which the requester aborts as the victim.
//! * The paper also describes deadlock *prevention* by global lock
//!   ordering; that is implemented at the scheduler level (sorted
//!   acquisition in commit paths) and via
//!   [`WaitOutcome::Victim`]-free ordered L-mode execution.
//!
//! ## Victim fairness (priority aging)
//!
//! Victims are tracked per worker. A worker that was recently victimized
//! *defers* self-victimization when its wait-for cycle runs through a
//! holder with a lower victim count — at least one member of any cycle has
//! a minimal count and therefore never defers, so progress is preserved
//! while the same worker stops being re-victimized indefinitely. Bounded
//! anonymous waits scale their spin budget the same way. Counts reset on
//! the worker's next commit.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// Result of a blocking wait attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The resource became available; retry the acquisition.
    Retry,
    /// A wait-for cycle (or bounded-wait timeout) was found and this worker
    /// was chosen as the victim: release everything and restart.
    Victim,
}

/// Budget of the bounded wait on anonymous (reader-held) locks.
#[derive(Clone, Copy, Debug)]
pub struct WaitConfig {
    /// Spin iterations before the waiter self-aborts as the victim.
    /// Scaled up (×2 per recent victimization, capped at ×8) by priority
    /// aging.
    pub spins: u32,
    /// Optional wall-clock bound on one anonymous wait; when set, the
    /// waiter becomes the victim as soon as it is exceeded, regardless of
    /// the spin budget. `None` (the default) disables the clock check —
    /// the spin budget alone bounds the wait.
    pub deadline: Option<Duration>,
}

impl Default for WaitConfig {
    fn default() -> Self {
        WaitConfig {
            spins: 10_000,
            deadline: None,
        }
    }
}

/// Maximum left-shift applied to the spin budget by priority aging.
const MAX_AGING_SHIFT: u32 = 3;

/// Global wait-for table: `waits[w]` is 1 + the worker id that `w` is
/// currently blocked on, or 0.
pub struct WaitForTable {
    waits: Box<[AtomicU32]>,
    /// Recent victimizations per worker (reset on commit): the priority
    /// used for victim-selection fairness.
    victims: Box<[AtomicU32]>,
    /// Watchdog escalation 2: when set, every bounded wait victimizes
    /// immediately — the heavy hammer that breaks waits the cycle
    /// detector cannot see (anonymous reader-held locks, cross-scheduler
    /// stalls).
    force_victims: AtomicBool,
    config: WaitConfig,
}

impl WaitForTable {
    /// A table for up to `max_workers` workers with the given wait budget.
    pub fn new(max_workers: usize, config: WaitConfig) -> Self {
        assert!(config.spins >= 1, "wait budget must allow at least 1 spin");
        WaitForTable {
            waits: (0..max_workers).map(|_| AtomicU32::new(0)).collect(),
            victims: (0..max_workers).map(|_| AtomicU32::new(0)).collect(),
            force_victims: AtomicBool::new(false),
            config,
        }
    }

    /// Set (or clear) the watchdog's force-victim flag: while set, every
    /// [`bounded_anonymous_wait`](Self::bounded_anonymous_wait) returns
    /// [`WaitOutcome::Victim`] at once.
    pub fn set_force_victims(&self, on: bool) {
        self.force_victims.store(on, Ordering::Release);
    }

    /// Whether the watchdog's force-victim flag is set.
    #[inline]
    pub fn force_victims(&self) -> bool {
        self.force_victims.load(Ordering::Relaxed)
    }

    /// Number of workers the table covers.
    pub fn capacity(&self) -> usize {
        self.waits.len()
    }

    /// The configured wait budget.
    #[inline]
    pub fn config(&self) -> &WaitConfig {
        &self.config
    }

    /// Record that `me` waits for `holder` and check for a cycle. Returns
    /// `true` if blocking would close a cycle and `me` must become the
    /// victim (its edge is already cleared); `false` means keep waiting —
    /// either there is no cycle, or priority aging deferred victimization
    /// to a cycle member with a lower victim count.
    pub fn register_and_check(&self, me: u32, holder: u32) -> bool {
        debug_assert_ne!(me, holder, "cannot wait on self");
        self.waits[me as usize].store(holder + 1, Ordering::SeqCst);
        // Follow the chain from `holder`. Bounded by the table size; the
        // table is small, and edges are few (blocked workers only).
        let mut cur = holder;
        for _ in 0..self.waits.len() {
            let next = self.waits[cur as usize].load(Ordering::SeqCst);
            if next == 0 {
                return false;
            }
            let next = next - 1;
            if next == me {
                // Cycle through us. Priority aging: if we were victimized
                // more recently than our direct holder, defer — the cycle
                // member with the minimal count never defers, so someone
                // else breaks the cycle. Our edge stays registered so the
                // others still see the full cycle.
                if self.victim_count(me) > self.victim_count(holder) {
                    return false;
                }
                self.clear(me);
                self.record_victim(me);
                return true;
            }
            cur = next;
        }
        // Chain longer than the worker count can only mean a cycle not
        // passing through us — let the worker it passes through detect it;
        // but to guarantee progress we also become a victim here.
        self.clear(me);
        self.record_victim(me);
        true
    }

    /// Remove `me`'s wait edge (after acquiring, aborting, or timing out).
    pub fn clear(&self, me: u32) {
        self.waits[me as usize].store(0, Ordering::SeqCst);
    }

    /// Spin-wait bounded for anonymous holders (shared locks). Returns
    /// [`WaitOutcome::Victim`] when the spin budget (scaled by `me`'s
    /// aging factor) or the configured deadline is exhausted. `started`
    /// is the instant the caller began this wait; it is only consulted
    /// when a deadline is configured.
    pub fn bounded_anonymous_wait(
        &self,
        me: u32,
        attempt: u32,
        started: Option<Instant>,
    ) -> WaitOutcome {
        if self.force_victims() {
            self.record_victim(me);
            return WaitOutcome::Victim;
        }
        if let (Some(deadline), Some(t0)) = (self.config.deadline, started) {
            if t0.elapsed() >= deadline {
                self.record_victim(me);
                return WaitOutcome::Victim;
            }
        }
        let shift = self.victim_count(me).min(MAX_AGING_SHIFT);
        let budget = self.config.spins.checked_shl(shift).unwrap_or(u32::MAX);
        if attempt >= budget {
            self.record_victim(me);
            return WaitOutcome::Victim;
        }
        if attempt % 64 == 63 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
        WaitOutcome::Retry
    }

    /// `me` committed: its victim-priority resets.
    pub fn record_commit(&self, me: u32) {
        self.victims[me as usize].store(0, Ordering::Relaxed);
    }

    /// Recent victimizations of `me` (since its last commit).
    #[inline]
    pub fn victim_count(&self, me: u32) -> u32 {
        self.victims[me as usize].load(Ordering::Relaxed)
    }

    fn record_victim(&self, me: u32) {
        self.victims[me as usize].fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for WaitForTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let edges: Vec<(usize, u32)> = self
            .waits
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let v = w.load(Ordering::Relaxed);
                (v != 0).then(|| (i, v - 1))
            })
            .collect();
        f.debug_struct("WaitForTable")
            .field("edges", &edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> WaitForTable {
        WaitForTable::new(n, WaitConfig::default())
    }

    #[test]
    fn no_cycle_on_simple_chain() {
        let t = table(8);
        assert!(!t.register_and_check(0, 1)); // 0 → 1
        assert!(!t.register_and_check(1, 2)); // 1 → 2
        t.clear(0);
        t.clear(1);
    }

    #[test]
    fn two_cycle_detected() {
        let t = table(8);
        assert!(!t.register_and_check(0, 1));
        assert!(t.register_and_check(1, 0), "1→0 closes the 0→1 cycle");
        // Victim's edge must have been cleared.
        assert!(!t.register_and_check(2, 1));
    }

    #[test]
    fn three_cycle_detected() {
        let t = table(8);
        assert!(!t.register_and_check(0, 1));
        assert!(!t.register_and_check(1, 2));
        assert!(t.register_and_check(2, 0));
    }

    #[test]
    fn clear_breaks_the_chain() {
        let t = table(8);
        assert!(!t.register_and_check(0, 1));
        t.clear(0);
        assert!(!t.register_and_check(1, 0), "edge was cleared; no cycle");
    }

    #[test]
    fn bounded_wait_eventually_victimises() {
        let t = table(2);
        assert_eq!(t.bounded_anonymous_wait(0, 0, None), WaitOutcome::Retry);
        assert_eq!(
            t.bounded_anonymous_wait(0, t.config().spins, None),
            WaitOutcome::Victim
        );
    }

    #[test]
    fn deadline_bounds_the_wait_in_wall_clock_time() {
        let t = WaitForTable::new(
            2,
            WaitConfig {
                spins: u32::MAX,
                deadline: Some(Duration::from_millis(1)),
            },
        );
        let t0 = Instant::now();
        let mut attempt = 0;
        while t.bounded_anonymous_wait(0, attempt, Some(t0)) == WaitOutcome::Retry {
            attempt += 1;
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "deadline never fired"
            );
        }
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn force_victims_short_circuits_every_bounded_wait() {
        let t = table(2);
        assert_eq!(t.bounded_anonymous_wait(0, 0, None), WaitOutcome::Retry);
        t.set_force_victims(true);
        assert_eq!(t.bounded_anonymous_wait(0, 0, None), WaitOutcome::Victim);
        t.set_force_victims(false);
        // Aging from the forced victimization scales the budget; attempt 0
        // is still within it.
        assert_eq!(t.bounded_anonymous_wait(0, 0, None), WaitOutcome::Retry);
    }

    #[test]
    fn recent_victim_defers_to_fresh_holder() {
        let t = table(8);
        // Worker 1 was recently victimized; worker 0 was not.
        t.record_victim(1);
        assert_eq!(t.victim_count(1), 1);
        assert!(!t.register_and_check(0, 1));
        // 1 detects the cycle but defers (its count exceeds 0's); its edge
        // stays registered so 0 can still see the full cycle.
        assert!(!t.register_and_check(1, 0));
        // 0 now detects the same cycle and, with the lower count, becomes
        // the victim — progress is preserved.
        assert!(t.register_and_check(0, 1));
        // A commit resets the priority: 1 self-victimizes normally again.
        t.record_commit(1);
        assert!(!t.register_and_check(0, 1));
        assert!(t.register_and_check(1, 0));
        t.clear(0);
    }

    #[test]
    fn aging_scales_the_anonymous_budget() {
        let t = table(2);
        let base = t.config().spins;
        t.record_victim(0);
        // One recent victimization doubles the budget.
        assert_eq!(t.bounded_anonymous_wait(0, base, None), WaitOutcome::Retry);
        assert_eq!(
            t.bounded_anonymous_wait(0, base * 2, None),
            WaitOutcome::Victim
        );
        // The scale factor is capped.
        for _ in 0..10 {
            t.record_victim(1);
        }
        assert_eq!(
            t.bounded_anonymous_wait(1, base.saturating_mul(8), None),
            WaitOutcome::Victim
        );
    }

    #[test]
    fn concurrent_registration_always_terminates() {
        // Hammer the table from many threads with random edges; the
        // invariant is simply "no hang and no panic".
        let t = std::sync::Arc::new(table(16));
        std::thread::scope(|s| {
            for me in 0..8u32 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..2000u32 {
                        let holder = (me + 1 + (i % 7)) % 8;
                        if holder != me {
                            let _ = t.register_and_check(me, holder);
                            t.clear(me);
                        }
                    }
                });
            }
        });
    }
}
