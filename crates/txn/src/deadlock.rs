//! Deadlock handling for blocking lock acquisition (paper §IV-E).
//!
//! The paper's L mode detects deadlock by checking the wait-for
//! relationship; H and O modes never wait (they only *try* locks), so only
//! L-mode transactions participate. Because each blocked worker waits for
//! at most one lock at a time, the wait-for graph is functional (out-degree
//! ≤ 1) and cycle detection reduces to chain-following from the lock's
//! current holder.
//!
//! Two practical wrinkles:
//!
//! * A lock held in *shared* mode has anonymous holders (the word stores
//!   only a count), so no precise edge can be recorded; waiting on readers
//!   falls back to a bounded wait, after which the requester aborts as the
//!   victim.
//! * The paper also describes deadlock *prevention* by global lock
//!   ordering; that is implemented at the scheduler level (sorted
//!   acquisition in commit paths) and via
//!   [`WaitOutcome::Victim`]-free ordered L-mode execution.

use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a blocking wait attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The resource became available; retry the acquisition.
    Retry,
    /// A wait-for cycle (or bounded-wait timeout) was found and this worker
    /// was chosen as the victim: release everything and restart.
    Victim,
}

/// Global wait-for table: `waits[w]` is 1 + the worker id that `w` is
/// currently blocked on, or 0.
pub struct WaitForTable {
    waits: Box<[AtomicU32]>,
}

/// Bounded spins while blocked on anonymous (reader-held) locks before the
/// requester self-aborts.
const ANON_WAIT_SPINS: u32 = 10_000;

impl WaitForTable {
    /// A table for up to `max_workers` workers.
    pub fn new(max_workers: usize) -> Self {
        WaitForTable {
            waits: (0..max_workers).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Number of workers the table covers.
    pub fn capacity(&self) -> usize {
        self.waits.len()
    }

    /// Record that `me` waits for `holder` and check for a cycle. Returns
    /// `true` if blocking would close a cycle (the caller must become the
    /// victim and must *not* leave the edge registered).
    pub fn register_and_check(&self, me: u32, holder: u32) -> bool {
        debug_assert_ne!(me, holder, "cannot wait on self");
        self.waits[me as usize].store(holder + 1, Ordering::SeqCst);
        // Follow the chain from `holder`. Bounded by the table size; the
        // table is small, and edges are few (blocked workers only).
        let mut cur = holder;
        for _ in 0..self.waits.len() {
            let next = self.waits[cur as usize].load(Ordering::SeqCst);
            if next == 0 {
                return false;
            }
            let next = next - 1;
            if next == me {
                // Cycle through us: we are the victim. Clear our edge.
                self.clear(me);
                return true;
            }
            cur = next;
        }
        // Chain longer than the worker count can only mean a cycle not
        // passing through us — let the worker it passes through detect it;
        // but to guarantee progress we also become a victim here.
        self.clear(me);
        true
    }

    /// Remove `me`'s wait edge (after acquiring, aborting, or timing out).
    pub fn clear(&self, me: u32) {
        self.waits[me as usize].store(0, Ordering::SeqCst);
    }

    /// Spin-wait bounded for anonymous holders (shared locks). Returns
    /// [`WaitOutcome::Victim`] when the budget is exhausted.
    pub fn bounded_anonymous_wait(&self, attempt: u32) -> WaitOutcome {
        if attempt >= ANON_WAIT_SPINS {
            return WaitOutcome::Victim;
        }
        if attempt % 64 == 63 {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
        WaitOutcome::Retry
    }
}

impl std::fmt::Debug for WaitForTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let edges: Vec<(usize, u32)> = self
            .waits
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let v = w.load(Ordering::Relaxed);
                (v != 0).then(|| (i, v - 1))
            })
            .collect();
        f.debug_struct("WaitForTable")
            .field("edges", &edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_on_simple_chain() {
        let t = WaitForTable::new(8);
        assert!(!t.register_and_check(0, 1)); // 0 → 1
        assert!(!t.register_and_check(1, 2)); // 1 → 2
        t.clear(0);
        t.clear(1);
    }

    #[test]
    fn two_cycle_detected() {
        let t = WaitForTable::new(8);
        assert!(!t.register_and_check(0, 1));
        assert!(t.register_and_check(1, 0), "1→0 closes the 0→1 cycle");
        // Victim's edge must have been cleared.
        assert!(!t.register_and_check(2, 1));
    }

    #[test]
    fn three_cycle_detected() {
        let t = WaitForTable::new(8);
        assert!(!t.register_and_check(0, 1));
        assert!(!t.register_and_check(1, 2));
        assert!(t.register_and_check(2, 0));
    }

    #[test]
    fn clear_breaks_the_chain() {
        let t = WaitForTable::new(8);
        assert!(!t.register_and_check(0, 1));
        t.clear(0);
        assert!(!t.register_and_check(1, 0), "edge was cleared; no cycle");
    }

    #[test]
    fn bounded_wait_eventually_victimises() {
        let t = WaitForTable::new(2);
        assert_eq!(t.bounded_anonymous_wait(0), WaitOutcome::Retry);
        assert_eq!(
            t.bounded_anonymous_wait(ANON_WAIT_SPINS),
            WaitOutcome::Victim
        );
    }

    #[test]
    fn concurrent_registration_always_terminates() {
        // Hammer the table from many threads with random edges; the
        // invariant is simply "no hang and no panic".
        let t = std::sync::Arc::new(WaitForTable::new(16));
        std::thread::scope(|s| {
            for me in 0..8u32 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..2000u32 {
                        let holder = (me + 1 + (i % 7)) % 8;
                        if holder != me {
                            let _ = t.register_and_check(me, holder);
                            t.clear(me);
                        }
                    }
                });
            }
        });
    }
}
