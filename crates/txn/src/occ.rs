//! Optimistic concurrency control, Silo-style — the paper's optimistic
//! baseline (its "OCC" in Figures 7, 13, 14 is "an optimistic transaction
//! scheduler Silo optimized for main-memory database").
//!
//! Reads record the vertex's commit version; writes are buffered. Commit
//! locks the write set (sorted, try-with-bounded-spin), validates that
//! every read version is unchanged and unlocked (or locked by us),
//! publishes, and releases with a version bump.

use std::sync::Arc;

use tufast_htm::{Addr, WordMap};

use crate::faults::FaultHandle;
use crate::health::HealthHandle;
use crate::obs::ObsHandle;
use crate::system::TxnSystem;
use crate::traits::{
    backoff, GraphScheduler, SchedStats, TxInterrupt, TxnBody, TxnHint, TxnOps, TxnOutcome,
    TxnWorker,
};
use crate::VertexId;

/// Bounded spins per write-lock during commit.
const COMMIT_LOCK_SPINS: u32 = 128;
/// Bounded retries of the consistent-read loop.
const READ_RETRIES: u32 = 4096;

/// The Silo-like OCC scheduler.
pub struct Occ {
    sys: Arc<TxnSystem>,
}

impl Occ {
    /// Create the scheduler over a shared system.
    pub fn new(sys: Arc<TxnSystem>) -> Self {
        Occ { sys }
    }
}

impl GraphScheduler for Occ {
    type Worker = OccWorker;

    fn worker(&self) -> OccWorker {
        let id = self.sys.new_worker_id();
        OccWorker {
            id,
            faults: self.sys.fault_handle(id),
            health: self.sys.health_handle(id),
            sys: Arc::clone(&self.sys),
            reads: Vec::with_capacity(32),
            read_seen: WordMap::with_capacity(32),
            writes: WordMap::with_capacity(32),
            write_vertices: Vec::with_capacity(16),
            write_seen: WordMap::with_capacity(16),
            stats: SchedStats::default(),
        }
    }

    fn name(&self) -> &'static str {
        "OCC"
    }
}

/// Per-thread OCC state.
pub struct OccWorker {
    id: u32,
    faults: FaultHandle,
    health: HealthHandle,
    sys: Arc<TxnSystem>,
    /// `(vertex, version at first read)`.
    reads: Vec<(VertexId, u32)>,
    read_seen: WordMap,
    /// Buffered writes: address → value.
    writes: WordMap,
    write_vertices: Vec<VertexId>,
    write_seen: WordMap,
    stats: SchedStats,
}

impl OccWorker {
    fn reset(&mut self) {
        self.reads.clear();
        self.read_seen.clear();
        self.writes.clear();
        self.write_vertices.clear();
        self.write_seen.clear();
    }

    /// Consistent read of `(version, value)`: the vertex lock word is
    /// sampled around the data load; a concurrent committer forces a retry.
    fn consistent_read(&self, v: VertexId, addr: Addr) -> Result<(u32, u64), TxInterrupt> {
        let mem = self.sys.mem();
        let locks = self.sys.locks();
        for attempt in 0..READ_RETRIES {
            let w1 = locks.peek(mem, v);
            if w1.writer().is_some_and(|o| o != self.id) {
                // Yield regularly: on oversubscribed cores the lock holder
                // needs CPU time to finish its commit.
                if attempt % 32 == 31 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            let val = mem.load_direct(addr);
            let w2 = locks.peek(mem, v);
            if w1 == w2 {
                return Ok((w1.version(), val));
            }
        }
        Err(TxInterrupt::Restart)
    }

    fn try_commit(&mut self, obs: &ObsHandle) -> Result<(), TxInterrupt> {
        if self.faults.validation_fails()
            || self.faults.lock_acquisition_fails()
            || self.faults.livelock_restart()
        {
            self.stats.injected_faults += 1;
            return Err(TxInterrupt::Restart);
        }
        let mem = self.sys.mem();
        let locks = self.sys.locks();

        if self.writes.is_empty() {
            // Read-only: still validate the read set so the transaction is
            // serializable at its commit point (Silo's read validation).
            for &(v, ver) in &self.reads {
                let w = locks.peek(mem, v);
                if w.version() != ver || w.writer().is_some() {
                    return Err(TxInterrupt::Restart);
                }
            }
            // Every source writer released (and thus ticketed) before our
            // reads, so the current clock upper-bounds their tickets.
            obs.commit_ticketed(self.id, || mem.clock_now_pub());
            return Ok(());
        }

        // Phase 1: lock the write set in vertex order.
        let mut order: Vec<VertexId> = self.write_vertices.clone();
        order.sort_unstable();
        let mut acquired = 0usize;
        'locking: for (i, &v) in order.iter().enumerate() {
            for spin in 0..COMMIT_LOCK_SPINS {
                if locks.try_exclusive(mem, v, self.id).is_ok() {
                    acquired = i + 1;
                    continue 'locking;
                }
                if spin % 32 == 31 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            // Failed: release what we got and restart.
            for &u in &order[..acquired] {
                locks.unlock_exclusive(mem, u, self.id, false);
            }
            return Err(TxInterrupt::Restart);
        }

        // Phase 2: validate reads.
        let mut ok = true;
        for &(v, ver) in &self.reads {
            let w = locks.peek(mem, v);
            let valid = w.version() == ver && w.writer().is_none_or(|o| o == self.id);
            if !valid {
                ok = false;
                break;
            }
        }
        if !ok {
            for &u in &order {
                locks.unlock_exclusive(mem, u, self.id, false);
            }
            return Err(TxInterrupt::Restart);
        }

        // Phase 3: publish and release with a version bump. The ticket is
        // minted after publication but before any lock release, so
        // conflicting committers are ticketed in publication order.
        for (addr, val) in self.writes.iter() {
            mem.store_direct(addr, val);
        }
        obs.commit_ticketed(self.id, || mem.clock_tick_pub());
        // Republish written lines at post-ticket versions while the write
        // locks are still held: the publication stores above left line
        // versions predating the ticket, which a snapshot reader pinned
        // mid-commit could wrongly accept (see `rmode` module docs).
        mem.republish_lines(self.writes.iter().map(|(a, _)| a));
        for &u in &order {
            locks.unlock_exclusive(mem, u, self.id, true);
        }
        Ok(())
    }
}

impl TxnOps for OccWorker {
    fn read(&mut self, v: VertexId, addr: Addr) -> Result<u64, TxInterrupt> {
        self.stats.reads += 1;
        if let Some(val) = self.writes.get(addr) {
            return Ok(val);
        }
        let (ver, val) = self.consistent_read(v, addr)?;
        if self.read_seen.insert(Addr(u64::from(v)), 1) {
            self.reads.push((v, ver));
        }
        Ok(val)
    }

    fn write(&mut self, v: VertexId, addr: Addr, val: u64) -> Result<(), TxInterrupt> {
        self.stats.writes += 1;
        self.writes.insert(addr, val);
        if self.write_seen.insert(Addr(u64::from(v)), 1) {
            self.write_vertices.push(v);
        }
        Ok(())
    }
}

impl TxnWorker for OccWorker {
    fn execute_hinted(&mut self, hint: TxnHint, body: &mut TxnBody<'_>) -> TxnOutcome {
        let mut attempts = match crate::rmode::read_only_prologue(
            &self.sys,
            self.id,
            &mut self.stats,
            &self.health,
            hint,
            body,
        ) {
            Ok(out) => return out,
            Err(prior) => prior,
        };
        let obs = self.sys.observer_handle();
        let id = self.id;
        loop {
            // Attempt boundary: no locks held, nothing buffered that the
            // next `reset` wouldn't drop — the clean place to stop a
            // cancelled or past-deadline job.
            if self.health.checkpoint().is_some() {
                self.stats.health_stops += 1;
                return TxnOutcome {
                    committed: false,
                    attempts,
                };
            }
            attempts += 1;
            self.faults.preempt();
            self.faults.stall_point();
            self.reset();
            obs.attempt_begin(id);
            match obs.run_body(self, id, body) {
                Ok(()) => {
                    obs.pre_commit(id);
                    match self.try_commit(&obs) {
                        Ok(()) => {
                            self.stats.commits += 1;
                            self.health.note_commit();
                            return TxnOutcome {
                                committed: true,
                                attempts,
                            };
                        }
                        Err(_) => {
                            self.stats.restarts += 1;
                            self.health.note_restart();
                            obs.abort(id, false);
                            backoff(attempts, self.id);
                        }
                    }
                }
                Err(TxInterrupt::Restart) => {
                    self.stats.restarts += 1;
                    self.health.note_restart();
                    obs.abort(id, false);
                    backoff(attempts, self.id);
                }
                Err(TxInterrupt::UserAbort) => {
                    self.stats.user_aborts += 1;
                    self.reset();
                    obs.abort(id, true);
                    return TxnOutcome {
                        committed: false,
                        attempts,
                    };
                }
                Err(TxInterrupt::Panicked) => {
                    // Writes were buffered; dropping them is the rollback.
                    self.reset();
                    self.stats.panics += 1;
                    obs.abort(id, false);
                    crate::obs::resume_body_panic();
                }
            }
        }
    }

    fn stats(&self) -> &SchedStats {
        &self.stats
    }

    fn take_stats(&mut self) -> SchedStats {
        std::mem::take(&mut self.stats)
    }

    fn health(&self) -> Option<&HealthHandle> {
        Some(&self.health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tufast_htm::MemoryLayout;

    fn bank(n: usize) -> (Arc<TxnSystem>, tufast_htm::MemRegion) {
        let mut layout = MemoryLayout::new();
        let acc = layout.alloc("acc", n as u64);
        let sys = TxnSystem::with_defaults(n, layout);
        for i in 0..n as u64 {
            sys.mem().store_direct(acc.addr(i), 100);
        }
        (sys, acc)
    }

    #[test]
    fn write_buffering_and_read_own_write() {
        let (sys, acc) = bank(1);
        let sched = Occ::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let out = w.execute(2, &mut |ops| {
            ops.write(0, acc.addr(0), 55)?;
            assert_eq!(ops.read(0, acc.addr(0))?, 55);
            Ok(())
        });
        assert!(out.committed);
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 55);
        assert_eq!(sys.locks().peek(sys.mem(), 0).version(), 1);
    }

    #[test]
    fn nothing_published_before_commit() {
        let (sys, acc) = bank(1);
        let sched = Occ::new(Arc::clone(&sys));
        let mut w = sched.worker();
        w.execute(2, &mut |ops| {
            ops.write(0, acc.addr(0), 1)?;
            // Mid-transaction, shared memory still has the old value.
            assert_eq!(sys.mem().load_direct(acc.addr(0)), 100);
            Ok(())
        });
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 1);
    }

    #[test]
    fn stale_read_forces_restart() {
        let (sys, acc) = bank(1);
        let sched = Occ::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let mut first = true;
        let out = w.execute(2, &mut |ops| {
            let x = ops.read(0, acc.addr(0))?;
            if first {
                first = false;
                // Another "thread" commits between our read and commit.
                sys.locks().try_exclusive(sys.mem(), 0, 99).unwrap();
                sys.mem().store_direct(acc.addr(0), 500);
                sys.locks().unlock_exclusive(sys.mem(), 0, 99, true);
            }
            ops.write(0, acc.addr(0), x + 1)
        });
        assert!(out.committed);
        assert_eq!(out.attempts, 2, "first attempt must have failed validation");
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 501);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let (sys, acc) = bank(1);
        let sched = Arc::new(Occ::new(Arc::clone(&sys)));
        let threads = 8;
        let per = 300;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let mut w = sched.worker();
                    for _ in 0..per {
                        w.execute(2, &mut |ops| {
                            let x = ops.read(0, acc.addr(0))?;
                            ops.write(0, acc.addr(0), x + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 100 + threads * per);
    }

    #[test]
    fn transfers_preserve_total_under_contention() {
        let n = 4usize;
        let (sys, acc) = bank(n);
        let sched = Arc::new(Occ::new(Arc::clone(&sys)));
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let sched = Arc::clone(&sched);
                s.spawn(move || {
                    let mut w = sched.worker();
                    for i in 0..300u64 {
                        let from = ((t * 13 + i) % n as u64) as VertexId;
                        let to = ((t * 7 + i * 3 + 1) % n as u64) as VertexId;
                        if from == to {
                            continue;
                        }
                        w.execute(4, &mut |ops| {
                            let a = ops.read(from, acc.addr(u64::from(from)))?;
                            let b = ops.read(to, acc.addr(u64::from(to)))?;
                            ops.write(from, acc.addr(u64::from(from)), a.wrapping_sub(1))?;
                            ops.write(to, acc.addr(u64::from(to)), b.wrapping_add(1))?;
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: u64 = (0..n as u64)
            .map(|i| sys.mem().load_direct(acc.addr(i)))
            .sum();
        assert_eq!(total, 100 * n as u64);
    }

    #[test]
    fn user_abort_discards_buffered_writes() {
        let (sys, acc) = bank(1);
        let sched = Occ::new(Arc::clone(&sys));
        let mut w = sched.worker();
        let out = w.execute(2, &mut |ops| {
            ops.write(0, acc.addr(0), 0)?;
            Err(ops.user_abort())
        });
        assert!(!out.committed);
        assert_eq!(sys.mem().load_direct(acc.addr(0)), 100);
    }
}
