//! # tufast-txn — concurrency substrate and baseline transaction schedulers
//!
//! Everything TuFast's three modes *share* (paper §IV-A: "by sharing same
//! locks and metadata, they are integrated as one HyTM") lives here, plus
//! the baseline schedulers the paper evaluates against (Figures 7, 13, 14):
//!
//! * [`TxnSystem`] — the shared heap: transactional memory, per-vertex
//!   versioned reader–writer lock words (*inside* the transactional memory,
//!   so HTM transactions can subscribe to them), the emulated-HTM runtime,
//!   timestamp-ordering metadata, and the deadlock table.
//! * [`VertexLocks`] — try/blocking shared & exclusive vertex locks with a
//!   32-bit commit version per vertex, encoded in one word.
//! * [`deadlock`] — a wait-for table with cycle detection for writer-writer
//!   waits and a bounded-wait fallback for reader-held locks.
//! * Scheduler traits ([`GraphScheduler`], [`TxnWorker`], [`TxnOps`]) —
//!   every scheduler (including TuFast itself, in the `tufast` crate) runs
//!   the *same* transaction bodies, so throughput comparisons are
//!   apples-to-apples.
//! * [`rmode`] — the R-mode snapshot-read fast path: declared-pure bodies
//!   ([`TxnHint::read_only`]) read a pinned epoch of the version clock with
//!   no locks, no read-set logging and no hardware transaction, on every
//!   scheduler.
//! * Baselines: [`TwoPhaseLocking`], [`Occ`] (Silo-like),
//!   [`TimestampOrdering`], [`SoftwareTm`] (TinySTM-like),
//!   [`HSyncLike`] (HTM + global-fallback hybrid), and
//!   [`HTimestampOrdering`] (HTM-accelerated TO).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deadlock;
pub mod faults;
pub mod health;
mod hsync;
mod hto;
mod locks;
pub mod obs;
mod occ;
pub mod rmode;
mod stm;
mod system;
mod to;
mod tpl;
mod traits;

pub use deadlock::WaitConfig;
pub use faults::{
    is_injected_crash, raise_injected_crash, FaultHandle, FaultKind, FaultPlan, FaultSpec,
    InjectedCrash, CRASH_ANY_WORKER,
};
pub use health::{
    AbortReason, CancelToken, HealthBoard, HealthConfig, HealthCounters, HealthHandle,
    HeartbeatView, JobAborted, JobDeadline,
};
pub use hsync::HSyncLike;
pub use hto::HTimestampOrdering;
pub use locks::{LockWord, VertexLocks};
pub use obs::{ObsHandle, TxnObserver};
pub use occ::Occ;
pub use rmode::{read_only_prologue, run_read_only, RRun, RWorker, ReadMode, R_DEMOTE_ATTEMPTS};
pub use stm::SoftwareTm;
pub use system::{SystemConfig, TxnSystem};
pub use to::TimestampOrdering;
pub use tpl::TwoPhaseLocking;
pub use traits::{
    backoff, GraphScheduler, SchedStats, TxInterrupt, TxnBody, TxnHint, TxnOps, TxnOutcome,
    TxnWorker,
};

/// Vertex identifier, re-exported for convenience (same as `tufast-graph`).
pub type VertexId = u32;
