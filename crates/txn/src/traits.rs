//! The scheduler-agnostic transaction interface.
//!
//! Transaction bodies are written once against [`TxnOps`] (the paper's
//! Table I: `READ(v, addr)` / `WRITE(v, addr, val)` inside a
//! `BEGIN(size)`…`COMMIT` bracket) and executed by any [`GraphScheduler`].
//! The benchmark harness runs the *same closures* through 2PL, OCC, TO,
//! STM, HSync, H-TO and TuFast, which is what makes the paper's Figure 7 /
//! 13 / 14 comparisons meaningful.

use tufast_htm::Addr;

use crate::VertexId;

/// Control-flow signal raised by transactional operations.
///
/// Bodies simply propagate it with `?`; the scheduler catches it and
/// decides what to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxInterrupt {
    /// The attempt cannot commit (conflict, abort, deadlock victim…).
    /// The scheduler rolls back and re-runs the body.
    Restart,
    /// The body itself called [`TxnOps::user_abort`] — roll back and do
    /// *not* retry (the paper's `ABORT()`).
    UserAbort,
    /// The body panicked. Produced only by the panic-containment layer in
    /// [`ObsHandle::run_body`](crate::obs::ObsHandle::run_body), never by
    /// bodies themselves: the scheduler rolls back (releasing every lock
    /// and HTM resource), records the panic, and re-raises the original
    /// payload via [`resume_body_panic`](crate::obs::resume_body_panic)
    /// so peers keep committing while the panic still surfaces on the
    /// calling thread.
    Panicked,
}

/// Transactional read/write operations, implemented per scheduler.
///
/// `v` names the vertex whose lock protects the access (the paper
/// associates every address with a vertex); `addr` is the shared word.
pub trait TxnOps {
    /// Transactionally read `addr` (protected by vertex `v`).
    fn read(&mut self, v: VertexId, addr: Addr) -> Result<u64, TxInterrupt>;
    /// Transactionally write `val` to `addr` (protected by vertex `v`).
    fn write(&mut self, v: VertexId, addr: Addr, val: u64) -> Result<(), TxInterrupt>;
    /// Abandon the transaction without retry; the body must return the
    /// produced interrupt immediately.
    fn user_abort(&mut self) -> TxInterrupt {
        TxInterrupt::UserAbort
    }
}

/// A transaction body: runs against any scheduler's [`TxnOps`]. Bodies may
/// be re-executed many times and must therefore be deterministic functions
/// of what they `read` (plus captured immutable state such as adjacency).
pub type TxnBody<'a> = dyn FnMut(&mut dyn TxnOps) -> Result<(), TxInterrupt> + 'a;

/// The `BEGIN` hint: the paper's optional `SIZE` argument plus a declared
/// purity bit.
///
/// `size` is the expected number of shared words touched (≈ 2·(degree+1)
/// for neighbourhood transactions); non-binding, and ignored by every
/// scheduler except TuFast's router. `read_only` declares the body *pure*:
/// it performs no [`TxnOps::write`]. Declared-pure bodies are dispatched to
/// the R-mode snapshot-read fast path ([`crate::rmode`]) — no locks, no
/// read-set logging, no hardware transaction. The declaration is checked:
/// a body that writes anyway is demoted to the scheduler's ordinary path
/// (and flagged statically by `tufast-lint`'s `read-purity` rule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnHint {
    /// Expected number of shared words touched.
    pub size: usize,
    /// The body is declared pure (reads only).
    pub read_only: bool,
}

impl TxnHint {
    /// An ordinary (read/write) transaction hint.
    #[inline]
    pub fn sized(size: usize) -> TxnHint {
        TxnHint {
            size,
            read_only: false,
        }
    }

    /// A declared-pure transaction hint: the body only reads.
    #[inline]
    pub fn read_only(size: usize) -> TxnHint {
        TxnHint {
            size,
            read_only: true,
        }
    }
}

/// What happened to one logical transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnOutcome {
    /// Whether the transaction committed (false only after `user_abort`).
    pub committed: bool,
    /// Number of body executions (1 = first attempt succeeded).
    pub attempts: u32,
}

/// Cross-scheduler statistics, owned per worker and merged by the harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Committed transactions.
    pub commits: u64,
    /// Transactions abandoned by `user_abort`.
    pub user_aborts: u64,
    /// Body re-executions (attempts beyond the first).
    pub restarts: u64,
    /// Transactional reads (committed and wasted).
    pub reads: u64,
    /// Transactional writes (committed and wasted).
    pub writes: u64,
    /// Times this worker was chosen as a wait-for-cycle deadlock victim.
    pub deadlock_victims: u64,
    /// Times this worker self-aborted out of a bounded anonymous
    /// (reader-held) lock wait — counted separately from cycle victims.
    pub anon_wait_victims: u64,
    /// Transaction bodies that panicked on this worker (each rolled back
    /// cleanly before the panic was re-raised).
    pub panics: u64,
    /// Scheduler-level faults (lock failures/stalls, validation failures,
    /// preemptions) injected into this worker by the active
    /// [`FaultPlan`](crate::faults::FaultPlan). HTM-level injected aborts
    /// are counted on the plan itself.
    pub injected_faults: u64,
    /// Work items migrated between workers by the work-stealing pool.
    pub steals: u64,
    /// Steal attempts that lost a race with the owner or another thief.
    pub steal_fails: u64,
    /// Lazy cursor advances past drained buckets in the priority pool.
    pub bucket_advances: u64,
    /// Completed parked waits of idle drain workers.
    pub parked_wakeups: u64,
    /// Transactions abandoned at an attempt boundary because the job's
    /// [`CancelToken`](crate::health::CancelToken) was stopped (cancel,
    /// deadline, or shed). Each is a clean rollback: no locks held, no
    /// hardware transaction open.
    pub health_stops: u64,
    /// Declared-pure transactions committed on the R-mode snapshot-read
    /// fast path (no locks, no read-set logging, no hardware transaction).
    /// A subset of `commits`.
    pub r_commits: u64,
    /// R-mode snapshot-validation retries: attempts that re-pinned their
    /// snapshot because a read raced a concurrent writer (line republished
    /// past the pinned clock, writer mid-commit, or snapshot too old).
    /// A subset of `restarts`.
    pub r_retries: u64,
}

impl SchedStats {
    /// Fold another worker's counters into this one.
    pub fn merge(&mut self, other: &SchedStats) {
        self.commits += other.commits;
        self.user_aborts += other.user_aborts;
        self.restarts += other.restarts;
        self.reads += other.reads;
        self.writes += other.writes;
        self.deadlock_victims += other.deadlock_victims;
        self.anon_wait_victims += other.anon_wait_victims;
        self.panics += other.panics;
        self.injected_faults += other.injected_faults;
        self.steals += other.steals;
        self.steal_fails += other.steal_fails;
        self.bucket_advances += other.bucket_advances;
        self.parked_wakeups += other.parked_wakeups;
        self.health_stops += other.health_stops;
        self.r_commits += other.r_commits;
        self.r_retries += other.r_retries;
    }

    /// Committed transactions per attempt — 1.0 means no wasted work.
    pub fn efficiency(&self) -> f64 {
        let attempts = self.commits + self.user_aborts + self.restarts;
        if attempts == 0 {
            1.0
        } else {
            self.commits as f64 / attempts as f64
        }
    }
}

/// A transaction scheduler over a shared [`TxnSystem`](crate::TxnSystem).
pub trait GraphScheduler: Sync {
    /// The per-thread execution handle.
    type Worker: TxnWorker + Send;

    /// Create a worker. Each thread gets exactly one.
    fn worker(&self) -> Self::Worker;

    /// Short name for benchmark tables ("2PL", "OCC", "TuFast", …).
    fn name(&self) -> &'static str;
}

/// Per-thread transaction execution.
pub trait TxnWorker {
    /// Run `body` as one transaction until it commits or user-aborts,
    /// with a full [`TxnHint`].
    ///
    /// Every scheduler honours `hint.read_only` by first attempting the
    /// body on the R-mode snapshot-read fast path; `hint.size` is
    /// non-binding and ignored by schedulers other than TuFast.
    fn execute_hinted(&mut self, hint: TxnHint, body: &mut TxnBody<'_>) -> TxnOutcome;

    /// Run `body` as one transaction until it commits or user-aborts.
    ///
    /// `size_hint` is the paper's optional `BEGIN(SIZE)` argument — the
    /// expected number of shared words touched (≈ 2·(degree+1) for
    /// neighbourhood transactions). Non-binding; schedulers other than
    /// TuFast ignore it. Equivalent to
    /// [`execute_hinted`](Self::execute_hinted) with
    /// [`TxnHint::sized`].
    fn execute(&mut self, size_hint: usize, body: &mut TxnBody<'_>) -> TxnOutcome {
        self.execute_hinted(TxnHint::sized(size_hint), body)
    }

    /// Statistics accumulated so far.
    fn stats(&self) -> &SchedStats;

    /// Take and reset the statistics.
    fn take_stats(&mut self) -> SchedStats;

    /// Emulated-hardware-transaction operations performed so far (reads +
    /// writes executed inside `XBEGIN`/`XEND`). On real TSX these cost a
    /// cache hit; under emulation they pay software bookkeeping — the
    /// benchmark harness uses this count to report hardware-calibrated
    /// throughput next to raw wall time (EXPERIMENTS.md). Zero for
    /// schedulers that never issue hardware transactions.
    fn htm_ops(&self) -> u64 {
        0
    }

    /// The worker's health probe, when it carries one. Drain loops use it
    /// to beat heartbeats at dequeue boundaries and to stop pulling work
    /// once the job's cancel token latches. The default (`None`) keeps
    /// lightweight test doubles compiling; every real scheduler worker
    /// overrides this.
    fn health(&self) -> Option<&crate::health::HealthHandle> {
        None
    }
}

/// Exponential backoff with deterministic per-worker jitter, shared by all
/// optimistic schedulers' retry loops (TuFast's router uses it too).
#[inline]
pub fn backoff(attempt: u32, salt: u32) {
    if attempt == 0 {
        return;
    }
    let exp = attempt.min(10);
    let spins = (1u32 << exp) + (salt.wrapping_mul(2654435761) >> 27);
    for _ in 0..spins {
        std::hint::spin_loop();
    }
    if attempt > 6 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_counts_wasted_attempts() {
        let s = SchedStats {
            commits: 3,
            restarts: 1,
            ..Default::default()
        };
        assert!((s.efficiency() - 0.75).abs() < 1e-12);
        assert_eq!(SchedStats::default().efficiency(), 1.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = SchedStats {
            commits: 1,
            reads: 10,
            ..Default::default()
        };
        let b = SchedStats {
            commits: 2,
            writes: 5,
            deadlock_victims: 1,
            anon_wait_victims: 2,
            panics: 3,
            injected_faults: 4,
            steals: 5,
            steal_fails: 6,
            bucket_advances: 7,
            parked_wakeups: 8,
            health_stops: 9,
            r_commits: 10,
            r_retries: 11,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits, 3);
        assert_eq!(a.reads, 10);
        assert_eq!(a.writes, 5);
        assert_eq!(a.deadlock_victims, 1);
        assert_eq!(a.anon_wait_victims, 2);
        assert_eq!(a.panics, 3);
        assert_eq!(a.injected_faults, 4);
        assert_eq!(a.steals, 5);
        assert_eq!(a.steal_fails, 6);
        assert_eq!(a.bucket_advances, 7);
        assert_eq!(a.parked_wakeups, 8);
        assert_eq!(a.health_stops, 9);
        assert_eq!(a.r_commits, 10);
        assert_eq!(a.r_retries, 11);
    }

    #[test]
    fn backoff_terminates_even_for_huge_attempts() {
        backoff(0, 0);
        backoff(50, 12345);
    }
}
