//! Seeded fault injection (feature `faults`).
//!
//! Mirrors the [`obs`](crate::obs) pattern: schedulers carry a cheap
//! [`FaultHandle`] and consult it at every hot-path decision point — lock
//! acquisitions, commit validations, and attempt boundaries. With the
//! feature disabled (the default) the handle is zero-sized and every
//! probe is an empty inline function, so production builds pay nothing.
//!
//! ## Determinism
//!
//! A [`FaultPlan`] is pure data: a seed plus per-site firing rates (in
//! permille). Every decision is a pure function of
//! `(seed, site, worker, per-worker op counter)` via a splitmix64 hash, so
//! the same plan over the same workload replays the same fault sequence
//! per worker regardless of thread interleaving. HTM-level faults
//! (spurious and capacity aborts) are delivered through an
//! [`AbortSource`] built by [`FaultPlan::abort_source`] and are keyed the
//! same way on `(ctx_id, op_seq)`.
//!
//! ## Sites
//!
//! | Site | Injected effect |
//! |------|-----------------|
//! | [`FaultKind::SpuriousAbort`] | emulated-HTM environmental abort |
//! | [`FaultKind::CapacityAbort`] | emulated-HTM capacity abort (non-retryable) |
//! | [`FaultKind::LockFail`] | a vertex-lock acquisition reports failure |
//! | [`FaultKind::LockStall`] | a bounded spin delay before an acquisition |
//! | [`FaultKind::ValidationFail`] | an optimistic commit validation reports failure |
//! | [`FaultKind::Preempt`] | a bounded spin delay at an attempt boundary |
//! | [`FaultKind::Crash`] | the run dies at a seeded probe (panics with [`InjectedCrash`]) |
//! | [`FaultKind::Stall`] | a seeded worker wedges (long bounded spin) at attempt boundaries |
//! | [`FaultKind::Livelock`] | commit/validation sites report failure, forcing endless restarts |
//! | [`FaultKind::TornWalWrite`] | a WAL append persists only a prefix of the frame, then the process dies |
//! | [`FaultKind::LostFsync`] | a WAL fsync is acknowledged but the data never becomes durable |
//! | [`FaultKind::CrashDuringCommit`] | the process dies after a WAL append but before the effects apply |
//! | [`FaultKind::CrashDuringTruncation`] | the process dies inside checkpoint log truncation |
//!
//! Injected failures are indistinguishable from real ones to the
//! scheduler, which is the point: the chaos matrix in `tufast-check`
//! proves every scheduler's retry/escalation ladder terminates with all
//! transactions committed no matter where the faults land. Workers
//! holding the TuFast *serial-fallback token* mark their handle exempt
//! ([`FaultHandle::set_exempt`]) so the stop-the-world commit that
//! guarantees liveness cannot itself be sabotaged.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tufast_htm::{AbortCode, AbortSource};

/// The kinds of faults the plan can inject, used to index the plan's
/// injected-fault counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Emulated-HTM spurious (environmental) abort.
    SpuriousAbort,
    /// Emulated-HTM capacity abort (deterministic, non-retryable).
    CapacityAbort,
    /// A vertex-lock acquisition reports failure.
    LockFail,
    /// A bounded spin delay before a lock acquisition.
    LockStall,
    /// An optimistic commit validation reports failure.
    ValidationFail,
    /// A bounded spin delay at an attempt boundary (models preemption).
    Preempt,
    /// The whole run dies at a seeded probe: a [`InjectedCrash`] panic
    /// models process death for crash-recovery testing.
    Crash,
    /// A seeded worker wedges — a long (but bounded) spin at every attempt
    /// boundary past the seeded probe count, with no heartbeats. Models a
    /// descheduled or page-faulting worker for watchdog testing.
    Stall,
    /// Commit/validation sites report failure at the given rate, so
    /// attempts restart without anyone committing. Models livelock for
    /// watchdog testing.
    Livelock,
    /// A write-ahead-log append persists only a prefix of its frame before
    /// the process dies — the torn tail a crashed `write(2)` leaves behind.
    TornWalWrite,
    /// A WAL fsync reports success but the bytes never become durable
    /// (lying disk / dropped page-cache flush). Observable only after a
    /// power cut: the harness truncates the log to the last *really*
    /// synced length before recovering.
    LostFsync,
    /// The process dies between a WAL append becoming durable and the
    /// mutation's effects being applied — redo recovery must finish the
    /// commit from the log alone.
    CrashDuringCommit,
    /// The process dies inside checkpoint log truncation (before or after
    /// the `set_len`), so recovery sees either a full log alongside a
    /// covering snapshot or an already-empty one.
    CrashDuringTruncation,
}

impl FaultKind {
    /// All kinds, in counter-index order.
    pub const ALL: [FaultKind; 13] = [
        FaultKind::SpuriousAbort,
        FaultKind::CapacityAbort,
        FaultKind::LockFail,
        FaultKind::LockStall,
        FaultKind::ValidationFail,
        FaultKind::Preempt,
        FaultKind::Crash,
        FaultKind::Stall,
        FaultKind::Livelock,
        FaultKind::TornWalWrite,
        FaultKind::LostFsync,
        FaultKind::CrashDuringCommit,
        FaultKind::CrashDuringTruncation,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SpuriousAbort => "spurious-abort",
            FaultKind::CapacityAbort => "capacity-abort",
            FaultKind::LockFail => "lock-fail",
            FaultKind::LockStall => "lock-stall",
            FaultKind::ValidationFail => "validation-fail",
            FaultKind::Preempt => "preempt",
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
            FaultKind::Livelock => "livelock",
            FaultKind::TornWalWrite => "torn-wal-write",
            FaultKind::LostFsync => "lost-fsync",
            FaultKind::CrashDuringCommit => "crash-during-commit",
            FaultKind::CrashDuringTruncation => "crash-during-truncation",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultKind::SpuriousAbort => 0,
            FaultKind::CapacityAbort => 1,
            FaultKind::LockFail => 2,
            FaultKind::LockStall => 3,
            FaultKind::ValidationFail => 4,
            FaultKind::Preempt => 5,
            FaultKind::Crash => 6,
            FaultKind::Stall => 7,
            FaultKind::Livelock => 8,
            FaultKind::TornWalWrite => 9,
            FaultKind::LostFsync => 10,
            FaultKind::CrashDuringCommit => 11,
            FaultKind::CrashDuringTruncation => 12,
        }
    }
}

/// Sentinel for [`FaultSpec::crash_worker`]: arm the crash probe on
/// every worker, so whichever reaches the probe count first crashes the
/// run. Useful when per-worker load is nondeterministic (stealing pools).
pub const CRASH_ANY_WORKER: u32 = u32::MAX;

/// Declarative description of a fault plan: a seed plus per-site rates.
///
/// Rates are in permille (0–1000); 1000 fires on every probe. The spin
/// counts bound the injected delays so no plan can stall a worker
/// unboundedly.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Seed from which every per-site decision stream is derived.
    pub seed: u64,
    /// Permille rate of HTM spurious aborts (per transactional op).
    pub spurious_abort_permille: u32,
    /// Permille rate of HTM capacity aborts (per transactional op).
    pub capacity_abort_permille: u32,
    /// Permille rate of failed vertex-lock acquisitions.
    pub lock_fail_permille: u32,
    /// Permille rate of stalls before a vertex-lock acquisition.
    pub lock_stall_permille: u32,
    /// Spin iterations of one injected lock stall.
    pub lock_stall_spins: u32,
    /// Permille rate of forced optimistic-validation failures.
    pub validation_fail_permille: u32,
    /// Permille rate of preemption delays at attempt boundaries.
    pub preempt_permille: u32,
    /// Spin iterations of one injected preemption delay.
    pub preempt_spins: u32,
    /// Worker whose crash probe is armed (ignored while
    /// [`FaultSpec::crash_at_probe`] is 0). [`CRASH_ANY_WORKER`] arms the
    /// probe on every worker, so the *first* worker to reach
    /// [`FaultSpec::crash_at_probe`] dies — the right choice for drivers
    /// whose per-worker load split is nondeterministic (work stealing).
    pub crash_worker: u32,
    /// Probe count at which the seeded worker crashes the run
    /// ([`FaultHandle::crash_point`] panics with [`InjectedCrash`]; every
    /// other worker's next crash probe then dies too, modelling whole
    /// process death). 0 disables crashing.
    pub crash_at_probe: u64,
    /// Worker whose stall probe is armed ([`CRASH_ANY_WORKER`] arms every
    /// worker; ignored while [`FaultSpec::stall_at_probe`] is 0).
    pub stall_worker: u32,
    /// Probe count at (and past) which the seeded worker wedges for
    /// [`FaultSpec::stall_spins`] at every attempt boundary, with no
    /// heartbeats while wedged. 0 disables stalling.
    pub stall_at_probe: u64,
    /// Spin iterations of one injected wedge — deliberately huge by
    /// default so a watchdog scanning every few milliseconds sees the
    /// heartbeat flat across several scans.
    pub stall_spins: u32,
    /// Permille rate of forced restarts at optimistic commit/validation
    /// sites (models livelock: every attempt aborts, nobody commits).
    pub livelock_permille: u32,
    /// WAL append index (1-based) at which the frame is torn: the writer
    /// persists only a prefix of the frame and the process dies
    /// ([`FaultHandle::wal_torn_append`]). 0 disables.
    pub torn_wal_at_append: u64,
    /// Permille rate of WAL fsyncs that report success without making the
    /// data durable ([`FaultHandle::wal_lost_fsync`]).
    pub lost_fsync_permille: u32,
    /// Durable-commit index (1-based) at (and past) which the process dies
    /// after the WAL append but before the mutation's effects apply
    /// ([`FaultHandle::wal_commit_crash_point`]). 0 disables.
    pub crash_at_wal_commit: u64,
    /// Truncation-probe count (1-based) at (and past) which the process
    /// dies inside checkpoint log truncation
    /// ([`FaultHandle::wal_truncation_crash_point`]); the truncation path
    /// probes both before and after its `set_len`, so 1 crashes with the
    /// log intact and 2 crashes with it already emptied. 0 disables.
    pub crash_at_truncation: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0xC4A0_5000,
            spurious_abort_permille: 0,
            capacity_abort_permille: 0,
            lock_fail_permille: 0,
            lock_stall_permille: 0,
            lock_stall_spins: 256,
            validation_fail_permille: 0,
            preempt_permille: 0,
            preempt_spins: 512,
            crash_worker: 0,
            crash_at_probe: 0,
            stall_worker: 0,
            stall_at_probe: 0,
            stall_spins: 20_000_000,
            livelock_permille: 0,
            torn_wal_at_append: 0,
            lost_fsync_permille: 0,
            crash_at_wal_commit: 0,
            crash_at_truncation: 0,
        }
    }
}

impl FaultSpec {
    /// Panics on out-of-range rates (permille > 1000).
    pub(crate) fn validate(&self) {
        for (name, rate) in [
            ("spurious_abort", self.spurious_abort_permille),
            ("capacity_abort", self.capacity_abort_permille),
            ("lock_fail", self.lock_fail_permille),
            ("lock_stall", self.lock_stall_permille),
            ("validation_fail", self.validation_fail_permille),
            ("preempt", self.preempt_permille),
            ("livelock", self.livelock_permille),
            ("lost_fsync", self.lost_fsync_permille),
        ] {
            assert!(rate <= 1000, "{name}_permille must be <= 1000, got {rate}");
        }
        assert!(
            self.spurious_abort_permille + self.capacity_abort_permille <= 1000,
            "combined HTM abort rate must be <= 1000 permille"
        );
    }
}

/// A live fault plan: the spec plus per-kind injected-fault counters.
///
/// Shared via `Arc` between the system, every worker's [`FaultHandle`],
/// and the [`AbortSource`] installed into the HTM config.
pub struct FaultPlan {
    spec: FaultSpec,
    injected: [AtomicU64; 13],
    /// Set once the seeded crash fires; all workers' subsequent crash
    /// probes then die too (process death takes every thread with it).
    crashed: AtomicBool,
}

impl FaultPlan {
    /// Build a shareable plan from `spec`.
    ///
    /// # Panics
    /// If any rate exceeds 1000 permille.
    pub fn new(spec: FaultSpec) -> Arc<Self> {
        spec.validate();
        Arc::new(FaultPlan {
            spec,
            injected: Default::default(),
            crashed: AtomicBool::new(false),
        })
    }

    /// Whether the seeded crash has fired (after which every worker's
    /// crash probe dies).
    pub fn crash_armed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The plan's spec.
    #[inline]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Faults of `kind` injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected so far, all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// `(kind, count)` for every kind with a nonzero count.
    pub fn injected_by_kind(&self) -> Vec<(FaultKind, u64)> {
        FaultKind::ALL
            .iter()
            .filter_map(|&k| {
                let n = self.injected(k);
                (n != 0).then_some((k, n))
            })
            .collect()
    }

    #[inline]
    fn record(&self, kind: FaultKind) {
        self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// An [`AbortSource`] delivering this plan's HTM-level faults,
    /// suitable for [`HtmConfig::abort_source`](tufast_htm::HtmConfig).
    ///
    /// The decision is pure in `(ctx_id, op_seq)`: capacity aborts claim
    /// the low end of the permille roll, spurious aborts the next band.
    pub fn abort_source(self: &Arc<Self>) -> AbortSource {
        let plan = Arc::clone(self);
        AbortSource::new(move |ctx_id, op_seq| {
            let spec = &plan.spec;
            if spec.capacity_abort_permille == 0 && spec.spurious_abort_permille == 0 {
                return None;
            }
            let roll = permille_roll(spec.seed, SITE_HTM, ctx_id, op_seq);
            if roll < spec.capacity_abort_permille {
                plan.record(FaultKind::CapacityAbort);
                Some(AbortCode::Capacity)
            } else if roll < spec.capacity_abort_permille + spec.spurious_abort_permille {
                plan.record(FaultKind::SpuriousAbort);
                Some(AbortCode::Spurious)
            } else {
                None
            }
        })
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("spec", &self.spec)
            .field("total_injected", &self.total_injected())
            .finish()
    }
}

/// Panic payload of an injected crash ([`FaultKind::Crash`]): the chaos
/// harness catches the unwinding run, verifies the payload with
/// [`is_injected_crash`], discards the in-memory system (volatile state
/// dies with the "process"), and exercises recovery from the last
/// snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedCrash {
    /// Worker whose probe fired.
    pub worker: u32,
    /// The probe count at which it fired.
    pub probe: u64,
}

/// Whether a caught panic payload is an [`InjectedCrash`] (as opposed to
/// a genuine bug unwinding out of the run).
pub fn is_injected_crash(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<InjectedCrash>()
}

/// Die with an [`InjectedCrash`] payload from a fault site that must do
/// work *between* deciding to crash and dying — the WAL writer persists a
/// torn frame prefix first, then calls this. Callers pair it with a probe
/// (e.g. [`FaultHandle::wal_torn_append`]) that already armed the plan, so
/// the harness's [`is_injected_crash`] check recognises the unwind.
pub fn raise_injected_crash(worker: u32, probe: u64) -> ! {
    std::panic::panic_any(InjectedCrash { worker, probe })
}

// Per-site salts keep the decision streams of different sites independent.
// All but the HTM salt are consulted only from `FaultHandle`'s active
// (feature-gated) probes; the HTM salt also feeds the always-compiled
// `FaultPlan::abort_source`.
const SITE_HTM: u64 = 0x11;
#[cfg(feature = "faults")]
const SITE_LOCK_FAIL: u64 = 0x22;
#[cfg(feature = "faults")]
const SITE_LOCK_STALL: u64 = 0x33;
#[cfg(feature = "faults")]
const SITE_VALIDATION: u64 = 0x44;
#[cfg(feature = "faults")]
const SITE_PREEMPT: u64 = 0x55;
#[cfg(feature = "faults")]
const SITE_LIVELOCK: u64 = 0x77;
#[cfg(feature = "faults")]
const SITE_WAL_SYNC: u64 = 0x88;

/// splitmix64 finalizer: decisions are pure in the mixed key.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A permille roll in `0..1000`, pure in `(seed, site, worker, seq)`.
#[inline]
fn permille_roll(seed: u64, site: u64, worker: u32, seq: u64) -> u32 {
    (mix(seed ^ (site << 56) ^ (u64::from(worker) << 32) ^ seq) % 1000) as u32
}

/// A cheap, always-present per-worker handle to the system's fault plan.
///
/// With feature `faults` this holds `Option<Arc<FaultPlan>>` plus the
/// worker id and a local probe counter; without it, it is zero-sized and
/// every probe is an empty inline function.
#[derive(Clone, Default)]
pub struct FaultHandle {
    #[cfg(feature = "faults")]
    inner: Option<Arc<FaultPlan>>,
    #[cfg(feature = "faults")]
    worker: u32,
    #[cfg(feature = "faults")]
    seq: u64,
    #[cfg(feature = "faults")]
    exempt: bool,
    /// WAL probes count their own sites (appends / syncs / durable commits
    /// / truncations) instead of sharing `seq`, so count-seeded durability
    /// faults land at exact protocol steps regardless of how many other
    /// probes fired in between.
    #[cfg(feature = "faults")]
    wal_appends: u64,
    #[cfg(feature = "faults")]
    wal_syncs: u64,
    #[cfg(feature = "faults")]
    wal_commits: u64,
    #[cfg(feature = "faults")]
    wal_truncations: u64,
}

impl FaultHandle {
    /// A handle with no plan attached.
    #[inline]
    pub fn none() -> Self {
        FaultHandle::default()
    }

    /// Wrap an installed plan for `worker` (only exists with feature
    /// `faults`).
    #[cfg(feature = "faults")]
    #[inline]
    pub fn attached(plan: Option<Arc<FaultPlan>>, worker: u32) -> Self {
        FaultHandle {
            inner: plan,
            worker,
            seq: 0,
            exempt: false,
            wal_appends: 0,
            wal_syncs: 0,
            wal_commits: 0,
            wal_truncations: 0,
        }
    }

    /// Whether a plan is attached and injection is not exempted (always
    /// `false` without the `faults` feature).
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "faults")]
        {
            self.inner.is_some() && !self.exempt
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// Exempt (or re-subject) this worker from injection. The TuFast
    /// serial-fallback path exempts its stop-the-world commit so the
    /// liveness backstop cannot be sabotaged by the plan it escapes.
    #[inline]
    pub fn set_exempt(&mut self, _exempt: bool) {
        #[cfg(feature = "faults")]
        {
            self.exempt = _exempt;
        }
    }

    /// Probe the lock-stall then lock-fail sites before a vertex-lock
    /// acquisition: possibly spin a bounded stall, then return `true` if
    /// the acquisition must report failure.
    #[inline]
    pub fn lock_acquisition_fails(&mut self) -> bool {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.seq += 1;
                let spec = plan.spec();
                if spec.lock_stall_permille > 0
                    && permille_roll(spec.seed, SITE_LOCK_STALL, self.worker, self.seq)
                        < spec.lock_stall_permille
                {
                    plan.record(FaultKind::LockStall);
                    stall(spec.lock_stall_spins);
                }
                if spec.lock_fail_permille > 0
                    && permille_roll(spec.seed, SITE_LOCK_FAIL, self.worker, self.seq)
                        < spec.lock_fail_permille
                {
                    plan.record(FaultKind::LockFail);
                    return true;
                }
            }
        }
        false
    }

    /// Probe the validation site inside an optimistic commit: `true`
    /// forces the validation to report failure.
    #[inline]
    pub fn validation_fails(&mut self) -> bool {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.seq += 1;
                let spec = plan.spec();
                if spec.validation_fail_permille > 0
                    && permille_roll(spec.seed, SITE_VALIDATION, self.worker, self.seq)
                        < spec.validation_fail_permille
                {
                    plan.record(FaultKind::ValidationFail);
                    return true;
                }
            }
        }
        false
    }

    /// Probe the preemption site at an attempt boundary: possibly spin a
    /// bounded delay (models the worker losing its core mid-transaction).
    #[inline]
    pub fn preempt(&mut self) {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.seq += 1;
                let spec = plan.spec();
                if spec.preempt_permille > 0
                    && permille_roll(spec.seed, SITE_PREEMPT, self.worker, self.seq)
                        < spec.preempt_permille
                {
                    plan.record(FaultKind::Preempt);
                    stall(spec.preempt_spins);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Probe the crash site (transaction entry in the TuFast router):
    /// when this is the seeded worker at (or past) the seeded probe
    /// count — or the plan has already crashed elsewhere — panic with an
    /// [`InjectedCrash`] payload, modelling process death.
    ///
    /// Exempt workers (the serial-fallback holder) never crash mid-commit;
    /// the crash lands at their next non-exempt entry instead.
    #[inline]
    pub fn crash_point(&mut self) {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.seq += 1;
                // Once any crash fault fired (including the WAL-site ones),
                // the process is dying: every non-exempt probe joins it.
                if plan.crash_armed() {
                    std::panic::panic_any(InjectedCrash {
                        worker: self.worker,
                        probe: self.seq,
                    });
                }
                let spec = plan.spec();
                if spec.crash_at_probe == 0 {
                    return;
                }
                let seeded_worker =
                    spec.crash_worker == CRASH_ANY_WORKER || self.worker == spec.crash_worker;
                let seeded_hit = seeded_worker && self.seq >= spec.crash_at_probe;
                if seeded_hit && !plan.crashed.swap(true, Ordering::SeqCst) {
                    plan.record(FaultKind::Crash);
                }
                if seeded_hit || plan.crash_armed() {
                    std::panic::panic_any(InjectedCrash {
                        worker: self.worker,
                        probe: self.seq,
                    });
                }
            }
        }
    }

    /// Probe the stall site at an attempt boundary: the seeded worker
    /// wedges in a long bounded spin (no heartbeats) at every probe past
    /// the seeded count, so a watchdog scanning the heartbeat board sees a
    /// flat beat on a non-idle worker.
    ///
    /// Unlike [`FaultHandle::preempt`] (a short random delay modelling a
    /// lost scheduling quantum), this is a deterministic, *persistent*
    /// wedge — the deadlock-free kind of liveness failure the watchdog's
    /// stall detector exists to catch.
    #[inline]
    pub fn stall_point(&mut self) {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.seq += 1;
                let spec = plan.spec();
                if spec.stall_at_probe == 0 {
                    return;
                }
                let seeded =
                    spec.stall_worker == CRASH_ANY_WORKER || self.worker == spec.stall_worker;
                if seeded && self.seq >= spec.stall_at_probe {
                    plan.record(FaultKind::Stall);
                    stall(spec.stall_spins);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Probe the livelock site inside an optimistic commit/validation:
    /// `true` forces the attempt to restart. At high rates nobody ever
    /// commits while everyone keeps aborting — the signature the
    /// watchdog's livelock detector (commits flat, restarts climbing)
    /// exists to catch.
    #[inline]
    pub fn livelock_restart(&mut self) -> bool {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.seq += 1;
                let spec = plan.spec();
                if spec.livelock_permille > 0
                    && permille_roll(spec.seed, SITE_LIVELOCK, self.worker, self.seq)
                        < spec.livelock_permille
                {
                    plan.record(FaultKind::Livelock);
                    return true;
                }
            }
        }
        false
    }

    /// Probe the WAL append site. `true` means the seeded torn write
    /// fires: the caller must persist only a *prefix* of the frame and
    /// then die via [`raise_injected_crash`] — a torn write is only ever
    /// observable because the process crashed mid-`write`. Arms the plan's
    /// crash flag so every other worker's next crash probe dies too.
    #[inline]
    pub fn wal_torn_append(&mut self) -> bool {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.wal_appends += 1;
                if plan.crash_armed() {
                    raise_injected_crash(self.worker, self.wal_appends);
                }
                let spec = plan.spec();
                if spec.torn_wal_at_append != 0 && self.wal_appends == spec.torn_wal_at_append {
                    plan.record(FaultKind::TornWalWrite);
                    plan.crashed.store(true, Ordering::SeqCst);
                    return true;
                }
            }
        }
        false
    }

    /// Probe the WAL fsync site: `true` means this fsync must be skipped
    /// while still reporting success to the caller (the lying-disk fault).
    /// The writer keeps its really-durable length behind, and the harness
    /// simulates the power cut that makes the lie observable.
    #[inline]
    pub fn wal_lost_fsync(&mut self) -> bool {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.wal_syncs += 1;
                let spec = plan.spec();
                if spec.lost_fsync_permille > 0
                    && permille_roll(spec.seed, SITE_WAL_SYNC, self.worker, self.wal_syncs)
                        < spec.lost_fsync_permille
                {
                    plan.record(FaultKind::LostFsync);
                    return true;
                }
            }
        }
        false
    }

    /// Probe the post-append / pre-apply window of a durable commit: at
    /// (and past) the seeded commit count the process dies with the
    /// record already durable but its effects not yet applied — redo
    /// recovery must finish the commit from the log alone.
    #[inline]
    pub fn wal_commit_crash_point(&mut self) {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.wal_commits += 1;
                if plan.crash_armed() {
                    raise_injected_crash(self.worker, self.wal_commits);
                }
                let spec = plan.spec();
                if spec.crash_at_wal_commit != 0 && self.wal_commits >= spec.crash_at_wal_commit {
                    if !plan.crashed.swap(true, Ordering::SeqCst) {
                        plan.record(FaultKind::CrashDuringCommit);
                    }
                    raise_injected_crash(self.worker, self.wal_commits);
                }
            }
        }
    }

    /// Probe checkpoint log truncation. The truncation path calls this
    /// both before and after its `set_len`, so a seeded count of 1 dies
    /// with the log still intact (snapshot already durable — replay must
    /// be idempotent) and 2 dies with the log already emptied.
    #[inline]
    pub fn wal_truncation_crash_point(&mut self) {
        #[cfg(feature = "faults")]
        {
            if let Some(plan) = self.active_plan() {
                self.wal_truncations += 1;
                if plan.crash_armed() {
                    raise_injected_crash(self.worker, self.wal_truncations);
                }
                let spec = plan.spec();
                if spec.crash_at_truncation != 0 && self.wal_truncations >= spec.crash_at_truncation
                {
                    if !plan.crashed.swap(true, Ordering::SeqCst) {
                        plan.record(FaultKind::CrashDuringTruncation);
                    }
                    raise_injected_crash(self.worker, self.wal_truncations);
                }
            }
        }
    }

    #[cfg(feature = "faults")]
    #[inline]
    fn active_plan(&self) -> Option<Arc<FaultPlan>> {
        if self.exempt {
            return None;
        }
        self.inner.clone()
    }
}

impl std::fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultHandle(active: {})", self.is_active())
    }
}

#[cfg(feature = "faults")]
#[inline]
fn stall(spins: u32) {
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "faults")]
    #[test]
    fn rolls_are_deterministic_and_in_range() {
        for seq in 0..2000 {
            let a = permille_roll(42, SITE_LOCK_FAIL, 3, seq);
            let b = permille_roll(42, SITE_LOCK_FAIL, 3, seq);
            assert_eq!(a, b);
            assert!(a < 1000);
        }
    }

    #[cfg(feature = "faults")]
    #[test]
    fn sites_and_workers_get_independent_streams() {
        let same = (0..1000)
            .filter(|&seq| {
                permille_roll(7, SITE_LOCK_FAIL, 0, seq)
                    == permille_roll(7, SITE_VALIDATION, 0, seq)
            })
            .count();
        assert!(same < 50, "site streams look correlated: {same}/1000");
        let same = (0..1000)
            .filter(|&seq| {
                permille_roll(7, SITE_LOCK_FAIL, 0, seq) == permille_roll(7, SITE_LOCK_FAIL, 1, seq)
            })
            .count();
        assert!(same < 50, "worker streams look correlated: {same}/1000");
    }

    #[test]
    fn abort_source_respects_rates_and_counts() {
        let plan = FaultPlan::new(FaultSpec {
            spurious_abort_permille: 1000,
            ..FaultSpec::default()
        });
        let src = plan.abort_source();
        for seq in 1..100 {
            assert_eq!(src.sample(0, seq), Some(AbortCode::Spurious));
        }
        assert_eq!(plan.injected(FaultKind::SpuriousAbort), 99);

        let plan = FaultPlan::new(FaultSpec {
            capacity_abort_permille: 1000,
            ..FaultSpec::default()
        });
        let src = plan.abort_source();
        assert_eq!(src.sample(5, 1), Some(AbortCode::Capacity));
        assert_eq!(plan.injected(FaultKind::CapacityAbort), 1);

        let quiet = FaultPlan::new(FaultSpec::default());
        assert_eq!(quiet.abort_source().sample(0, 1), None);
        assert_eq!(quiet.total_injected(), 0);
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn out_of_range_rate_rejected() {
        let _ = FaultPlan::new(FaultSpec {
            lock_fail_permille: 1001,
            ..FaultSpec::default()
        });
    }

    #[cfg(feature = "faults")]
    #[test]
    fn handle_fires_at_full_rate_and_respects_exemption() {
        let plan = FaultPlan::new(FaultSpec {
            lock_fail_permille: 1000,
            validation_fail_permille: 1000,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        assert!(h.is_active());
        assert!(h.lock_acquisition_fails());
        assert!(h.validation_fails());
        h.set_exempt(true);
        assert!(!h.is_active());
        assert!(!h.lock_acquisition_fails());
        assert!(!h.validation_fails());
        h.set_exempt(false);
        assert!(h.lock_acquisition_fails());
        assert_eq!(plan.injected(FaultKind::LockFail), 2);
        assert_eq!(plan.injected(FaultKind::ValidationFail), 1);
    }

    #[test]
    fn inactive_handle_never_fires() {
        let mut h = FaultHandle::none();
        assert!(!h.is_active());
        assert!(!h.lock_acquisition_fails());
        assert!(!h.validation_fails());
        assert!(!h.livelock_restart());
        assert!(!h.wal_torn_append());
        assert!(!h.wal_lost_fsync());
        h.preempt();
        h.crash_point();
        h.stall_point();
        h.wal_commit_crash_point();
        h.wal_truncation_crash_point();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn stall_wedges_only_the_seeded_worker_past_its_probe() {
        let plan = FaultPlan::new(FaultSpec {
            stall_worker: 1,
            stall_at_probe: 2,
            stall_spins: 8, // keep the test quick; duration is not under test
            ..FaultSpec::default()
        });
        let mut seeded = FaultHandle::attached(Some(Arc::clone(&plan)), 1);
        seeded.stall_point(); // probe 1: below the threshold
        assert_eq!(plan.injected(FaultKind::Stall), 0);
        seeded.stall_point(); // probe 2: wedges
        seeded.stall_point(); // probe 3: persistent — wedges again
        assert_eq!(plan.injected(FaultKind::Stall), 2);
        let mut other = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        for _ in 0..5 {
            other.stall_point();
        }
        assert_eq!(plan.injected(FaultKind::Stall), 2, "only worker 1 stalls");
        let mut exempt = FaultHandle::attached(Some(Arc::clone(&plan)), 1);
        exempt.set_exempt(true);
        for _ in 0..5 {
            exempt.stall_point();
        }
        assert_eq!(plan.injected(FaultKind::Stall), 2, "exempt never stalls");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn livelock_fires_at_full_rate_and_counts() {
        let plan = FaultPlan::new(FaultSpec {
            livelock_permille: 1000,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        for _ in 0..10 {
            assert!(h.livelock_restart());
        }
        assert_eq!(plan.injected(FaultKind::Livelock), 10);
        let quiet = FaultPlan::new(FaultSpec::default());
        let mut h = FaultHandle::attached(Some(Arc::clone(&quiet)), 0);
        assert!(!h.livelock_restart());
        assert_eq!(quiet.total_injected(), 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn crash_fires_at_seeded_probe_then_arms_every_worker() {
        let plan = FaultPlan::new(FaultSpec {
            crash_worker: 2,
            crash_at_probe: 3,
            ..FaultSpec::default()
        });
        // The seeded worker survives probes 1 and 2, dies at 3.
        let mut seeded = FaultHandle::attached(Some(Arc::clone(&plan)), 2);
        seeded.crash_point();
        seeded.crash_point();
        assert!(!plan.crash_armed());
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            seeded.crash_point();
        }));
        let payload = died.expect_err("seeded probe must crash");
        assert!(is_injected_crash(payload.as_ref()));
        assert_eq!(
            payload.downcast_ref::<InjectedCrash>(),
            Some(&InjectedCrash {
                worker: 2,
                probe: 3
            })
        );
        assert!(plan.crash_armed());
        assert_eq!(plan.injected(FaultKind::Crash), 1);

        // Any other worker's next crash probe now dies too (process
        // death), but the counter records the crash once.
        let mut other = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            other.crash_point();
        }));
        assert!(is_injected_crash(
            died.expect_err("armed plan kills all").as_ref()
        ));
        assert_eq!(plan.injected(FaultKind::Crash), 1);

        // Exempt handles never crash (serial-fallback holders).
        let mut exempt = FaultHandle::attached(Some(Arc::clone(&plan)), 1);
        exempt.set_exempt(true);
        exempt.crash_point();
    }

    #[cfg(feature = "faults")]
    #[test]
    fn wildcard_crash_takes_the_first_worker_to_reach_the_probe() {
        let plan = FaultPlan::new(FaultSpec {
            crash_worker: CRASH_ANY_WORKER,
            crash_at_probe: 3,
            ..FaultSpec::default()
        });
        // Two workers race the probe count; whichever probes third dies,
        // regardless of id.
        let mut a = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        let mut b = FaultHandle::attached(Some(Arc::clone(&plan)), 7);
        a.crash_point();
        a.crash_point();
        b.crash_point();
        assert!(!plan.crash_armed());
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.crash_point();
        }));
        let payload = died.expect_err("third probe on any worker must crash");
        assert!(is_injected_crash(payload.as_ref()));
        assert_eq!(
            payload.downcast_ref::<InjectedCrash>(),
            Some(&InjectedCrash {
                worker: 0,
                probe: 3
            })
        );
        assert!(plan.crash_armed());
        assert_eq!(plan.injected(FaultKind::Crash), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn torn_append_fires_once_and_arms_the_plan() {
        let plan = FaultPlan::new(FaultSpec {
            torn_wal_at_append: 3,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        assert!(!h.wal_torn_append()); // append 1
        assert!(!h.wal_torn_append()); // append 2
        assert!(!plan.crash_armed());
        assert!(h.wal_torn_append()); // append 3: torn
        assert!(plan.crash_armed());
        assert_eq!(plan.injected(FaultKind::TornWalWrite), 1);
        // The process is now dying: any other worker's crash probe joins.
        let mut other = FaultHandle::attached(Some(Arc::clone(&plan)), 5);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            other.crash_point();
        }));
        assert!(is_injected_crash(died.expect_err("armed").as_ref()));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn lost_fsync_fires_at_full_rate_and_counts() {
        let plan = FaultPlan::new(FaultSpec {
            lost_fsync_permille: 1000,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        for _ in 0..7 {
            assert!(h.wal_lost_fsync());
        }
        assert_eq!(plan.injected(FaultKind::LostFsync), 7);
        assert!(!plan.crash_armed(), "a lying fsync is not a crash");
        let quiet = FaultPlan::new(FaultSpec::default());
        let mut h = FaultHandle::attached(Some(Arc::clone(&quiet)), 0);
        assert!(!h.wal_lost_fsync());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn commit_crash_fires_at_seeded_count() {
        let plan = FaultPlan::new(FaultSpec {
            crash_at_wal_commit: 2,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        h.wal_commit_crash_point(); // commit 1 survives
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.wal_commit_crash_point(); // commit 2 dies
        }));
        let payload = died.expect_err("second durable commit must crash");
        assert!(is_injected_crash(payload.as_ref()));
        assert_eq!(
            payload.downcast_ref::<InjectedCrash>(),
            Some(&InjectedCrash {
                worker: 0,
                probe: 2
            })
        );
        assert_eq!(plan.injected(FaultKind::CrashDuringCommit), 1);
        assert!(plan.crash_armed());
    }

    #[cfg(feature = "faults")]
    #[test]
    fn truncation_crash_fires_at_seeded_probe() {
        let plan = FaultPlan::new(FaultSpec {
            crash_at_truncation: 2,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        h.wal_truncation_crash_point(); // before set_len: survives
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.wal_truncation_crash_point(); // after set_len: dies
        }));
        assert!(is_injected_crash(died.expect_err("must crash").as_ref()));
        assert_eq!(plan.injected(FaultKind::CrashDuringTruncation), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn exempt_handles_skip_wal_faults() {
        let plan = FaultPlan::new(FaultSpec {
            torn_wal_at_append: 1,
            lost_fsync_permille: 1000,
            crash_at_wal_commit: 1,
            crash_at_truncation: 1,
            ..FaultSpec::default()
        });
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        h.set_exempt(true);
        assert!(!h.wal_torn_append());
        assert!(!h.wal_lost_fsync());
        h.wal_commit_crash_point();
        h.wal_truncation_crash_point();
        assert_eq!(plan.total_injected(), 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn disabled_crash_spec_never_fires() {
        let plan = FaultPlan::new(FaultSpec::default());
        let mut h = FaultHandle::attached(Some(Arc::clone(&plan)), 0);
        for _ in 0..100 {
            h.crash_point();
        }
        assert!(!plan.crash_armed());
        assert_eq!(plan.injected(FaultKind::Crash), 0);
    }
}
