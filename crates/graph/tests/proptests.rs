//! Property-based tests of graph construction and generator invariants.

use proptest::prelude::*;

use tufast_graph::{gen, load, GraphBuilder};

proptest! {
    /// CSR construction preserves exactly the deduplicated, loop-free edge
    /// multiset, sorted per source.
    #[test]
    fn builder_matches_model(edges in prop::collection::vec((0u32..50, 0u32..50), 0..400)) {
        let mut b = GraphBuilder::new(50);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        let mut model: Vec<(u32, u32)> = edges
            .iter()
            .copied()
            .filter(|&(s, d)| s != d)
            .collect();
        model.sort_unstable();
        model.dedup();
        let got: Vec<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(got, model);
        // Adjacency lists are sorted (binary-searchable).
        for v in g.vertices() {
            prop_assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// In-edges are the exact transpose.
    #[test]
    fn reverse_is_transpose(edges in prop::collection::vec((0u32..40, 0u32..40), 0..300)) {
        let mut b = GraphBuilder::new(40);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.with_in_edges().build();
        let forward: Vec<(u32, u32)> = g.edges().collect();
        let mut back: Vec<(u32, u32)> = g
            .vertices()
            .flat_map(|v| g.in_neighbors(v).iter().map(move |&u| (u, v)))
            .collect();
        back.sort_unstable();
        prop_assert_eq!(forward, back);
    }

    /// Symmetric graphs are actually symmetric.
    #[test]
    fn symmetric_builder_produces_symmetric_graph(edges in prop::collection::vec((0u32..30, 0u32..30), 0..200)) {
        let mut b = GraphBuilder::new(30);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.symmetric().build();
        for (s, d) in g.edges() {
            prop_assert!(g.neighbors(d).binary_search(&s).is_ok(), "missing reverse of ({s},{d})");
        }
    }

    /// Edge-list round-trip preserves the degree multiset.
    #[test]
    fn edge_list_roundtrip(edges in prop::collection::vec((0u32..30, 0u32..30), 1..200)) {
        let mut b = GraphBuilder::new(30);
        for &(s, d) in &edges {
            b.add_edge(s, d);
        }
        let g = b.build();
        let mut buf = Vec::new();
        load::write_edge_list(&g, &mut buf).unwrap();
        let g2 = load::read_edge_list(buf.as_slice(), load::LoadOptions::default()).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        let mut d1: Vec<usize> = g.vertices().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        let mut d2: Vec<usize> = g2.vertices().map(|v| g2.degree(v)).filter(|&d| d > 0).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    /// R-MAT generators are deterministic in their seed and in-bounds.
    #[test]
    fn rmat_is_seed_deterministic(seed in any::<u64>()) {
        let g1 = gen::rmat(7, 4, seed);
        let g2 = gen::rmat(7, 4, seed);
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
        prop_assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
        prop_assert_eq!(g1.num_vertices(), 128);
    }

    /// Random weights stay in range and respect undirected symmetry.
    #[test]
    fn weights_in_range(seed in any::<u64>(), max_w in 1u32..1000) {
        let base = gen::grid2d(6, 6);
        let g = gen::with_random_weights(&base, max_w, seed);
        for v in g.vertices() {
            for (u, w) in g.weighted_neighbors(v) {
                prop_assert!((1..=max_w).contains(&w));
                let back: Vec<u32> = g
                    .weighted_neighbors(u)
                    .filter(|&(x, _)| x == v)
                    .map(|(_, w)| w)
                    .collect();
                prop_assert_eq!(back, vec![w]);
            }
        }
    }
}
