//! Seeded synthetic graph generators.
//!
//! These produce the laptop-scale stand-ins for the paper's evaluation
//! graphs (DESIGN.md §2). All generators are deterministic given a seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// R-MAT generator (Chakrabarti et al.): recursively partitions the
/// adjacency matrix with probabilities `(a, b, c, 1-a-b-c)`. With the
/// Graph500 parameters `a=0.57, b=0.19, c=0.19` it yields the heavy-tailed,
/// scale-free degree distribution of social graphs like twitter-mpi —
/// the skew TuFast's three-mode routing exploits.
///
/// Produces a simple directed graph with `2^scale` vertices and about
/// `edge_factor · 2^scale` edges (slightly fewer after dedup).
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    rmat_with_params(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// R-MAT with explicit quadrant probabilities.
///
/// # Panics
/// If the probabilities are not a sub-distribution (`a+b+c > 1`) or scale
/// exceeds 31.
pub fn rmat_with_params(
    scale: u32,
    edge_factor: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
) -> Graph {
    assert!(scale <= 31, "scale {scale} too large for u32 vertex ids");
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
        "invalid R-MAT quadrants"
    );
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    // Graph500-style vertex permutation: raw R-MAT concentrates high-degree
    // vertices at ids with aligned bit patterns (0, 2^k, …), a synthetic
    // artefact real crawls don't have — and one that pathologically
    // collides in set-associative cache models. Relabel uniformly.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.random_range(0..=i));
    }
    let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
    for _ in 0..m {
        let (mut x, mut y) = (0u32, 0u32);
        for level in (0..scale).rev() {
            let r: f64 = rng.random();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x |= dx << level;
            y |= dy << level;
        }
        if x != y {
            builder.add_edge(perm[x as usize], perm[y as usize]);
        }
    }
    builder.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches `m`
/// edges to existing vertices with probability proportional to degree.
/// Produces a connected power-law graph — the friendster-style stand-in.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).with_edge_capacity(n * m);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 vertices.
    for v in 0..=m {
        for u in 0..v {
            builder.add_edge(v as VertexId, u as VertexId);
            endpoints.push(v as VertexId);
            endpoints.push(u as VertexId);
        }
    }
    for v in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let u = endpoints[rng.random_range(0..endpoints.len())];
            if u != v as VertexId && !chosen.contains(&u) {
                chosen.push(u);
            }
        }
        for &u in &chosen {
            builder.add_edge(v as VertexId, u);
            endpoints.push(v as VertexId);
            endpoints.push(u);
        }
    }
    builder.build()
}

/// Erdős–Rényi `G(n, m)`: `m` uniformly random simple directed edges.
/// The *even* degree distribution used for the paper's Figure 7 contention
/// sweep, where contention must be controlled by the workload, not by hubs.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).with_edge_capacity(m);
    let n32 = n as VertexId;
    let mut added = 0usize;
    // Sampling with replacement then dedup would undershoot m; oversample
    // modestly instead and stop at m (dedup still applies at build).
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(4).max(16);
    while added < m && attempts < max_attempts {
        attempts += 1;
        let s = rng.random_range(0..n32);
        let d = rng.random_range(0..n32);
        if s != d {
            builder.add_edge(s, d);
            added += 1;
        }
    }
    builder.build()
}

/// A `width × height` 4-neighbour grid (road-network-like: bounded degree,
/// large diameter). Undirected (both directions materialised).
pub fn grid2d(width: usize, height: usize) -> Graph {
    let n = width * height;
    let mut builder = GraphBuilder::new(n).with_edge_capacity(2 * n);
    let id = |x: usize, y: usize| (y * width + x) as VertexId;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                builder.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < height {
                builder.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    builder.symmetric().build()
}

/// A star: vertex 0 connected to all others, both directions. The extreme
/// hub case — every transaction on the hub exceeds HTM capacity once the
/// star is big enough, forcing TuFast's L mode.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut builder = GraphBuilder::new(n).with_edge_capacity(2 * (n - 1));
    for v in 1..n as VertexId {
        builder.add_edge(0, v);
    }
    builder.symmetric().build()
}

/// A simple directed path `0 → 1 → … → n-1`.
pub fn path(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        builder.add_edge(v - 1, v);
    }
    builder.build()
}

/// Attach uniform random weights in `1..=max_weight` to an existing graph
/// (the paper generates SSSP weights randomly). The reverse adjacency and
/// symmetry of the input are preserved edge-by-edge via re-building.
pub fn with_random_weights(g: &Graph, max_weight: u32, seed: u64) -> Graph {
    let mut builder = GraphBuilder::new(g.num_vertices())
        .with_edge_capacity(g.num_edges() as usize)
        .keep_duplicates()
        .keep_self_loops();
    if g.reverse().is_some() {
        builder = builder.with_in_edges();
    }
    // Mirror weights across symmetric pairs deterministically by hashing the
    // unordered pair, so (u,v) and (v,u) get the same weight.
    let pair_seed = seed ^ 0x9E37_79B9;
    for (s, d) in g.edges() {
        let (lo, hi) = if s < d { (s, d) } else { (d, s) };
        let h =
            (u64::from(lo) << 32 | u64::from(hi)).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ pair_seed;
        let w = (h % u64::from(max_weight)) as u32 + 1;
        builder.add_weighted_edge(s, d, w);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let g1 = rmat(10, 8, 7);
        let g2 = rmat(10, 8, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.num_vertices(), 1024);
        // Power-law skew: the max degree should dwarf the average.
        let (_, dmax) = g1.max_degree();
        assert!(
            dmax as f64 > 5.0 * g1.avg_degree(),
            "max {dmax} avg {}",
            g1.avg_degree()
        );
    }

    #[test]
    fn rmat_different_seeds_differ() {
        let g1 = rmat(8, 8, 1);
        let g2 = rmat(8, 8, 2);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn ba_degree_sum_matches_edges() {
        let g = barabasi_albert(500, 3, 11);
        assert_eq!(g.num_vertices(), 500);
        // Seed clique over m+1=4 vertices (6 edges) + m=3 per later vertex.
        let expected = 6 + (500 - 4) * 3;
        assert_eq!(g.num_edges() as usize, expected);
        let total: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert_eq!(total as u64, g.num_edges());
    }

    #[test]
    fn erdos_renyi_has_even_degrees() {
        let g = erdos_renyi(1000, 10_000, 3);
        assert!(g.num_edges() > 9_000);
        let (_, dmax) = g.max_degree();
        // Poisson(≈10): max degree stays within a small factor of the mean.
        assert!(dmax < 40, "unexpected hub in ER graph: {dmax}");
    }

    #[test]
    fn grid_degrees_are_bounded_by_four() {
        let g = grid2d(10, 7);
        assert_eq!(g.num_vertices(), 70);
        assert!(g.vertices().all(|v| g.degree(v) <= 4));
        assert_eq!(g.num_edges(), (9 * 7 + 10 * 6) as u64 * 2);
    }

    #[test]
    fn star_hub_has_full_degree() {
        let g = star(100);
        assert_eq!(g.degree(0), 99);
        assert!(g.vertices().skip(1).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn path_is_a_chain() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn random_weights_are_in_range_and_symmetric() {
        let base = grid2d(5, 5);
        let g = with_random_weights(&base, 100, 9);
        assert!(g.has_weights());
        assert_eq!(g.num_edges(), base.num_edges());
        for v in g.vertices() {
            for (u, w) in g.weighted_neighbors(v) {
                assert!((1..=100).contains(&w));
                // Undirected weight symmetry.
                let back: Vec<_> = g.weighted_neighbors(u).filter(|&(x, _)| x == v).collect();
                assert_eq!(back, vec![(v, w)]);
            }
        }
    }
}
