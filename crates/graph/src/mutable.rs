//! [`MutableGraph`]: CSR base plus a transactional per-vertex delta
//! overlay.
//!
//! The base [`Graph`] stays immutable (analytics keep their zero-copy CSR
//! scans); mutations land in an overlay carved out of the shared
//! transactional memory, so `add_edge` / `remove_edge` / `add_vertex` are
//! ordinary transaction bodies executed through *any* scheduler (2PL, OCC,
//! TO, STM, HSync, H-TO, TuFast), serializable alongside reads and
//! observable by the DSG oracle like every other transaction.
//!
//! ## Overlay layout (all words inside [`TxMemory`])
//!
//! * `mg.head` — one word per vertex slot: head of that vertex's delta
//!   chain (`0` = empty, else `slot index + 1`).
//! * `mg.slots` — two words per delta slot:
//!   `word0 = weight << 32 | target`,
//!   `word1 = remove_flag << 63 | previous head`.
//! * `mg.arena` — one used-count word per stripe; slot indices are
//!   striped (`stripe = src % stripes`) so concurrent mutators on
//!   different vertices rarely contend on allocation.
//! * `mg.meta` — the live vertex count.
//!
//! Every word is read and written through [`TxnOps`] with a consistent
//! vertex tag (the chain words of vertex `u` under `u`'s lock, a stripe's
//! count word under vertex tag `stripe`), which is exactly the paper's
//! vertex-association discipline — nothing scheduler-specific anywhere.
//!
//! Chains record *newest-first*: the first op found for a target wins, so
//! the effective adjacency is `(base ∪ adds) \ removes` under
//! last-writer-wins per `(src, dst)` pair. [`MutableGraph::materialize`]
//! folds base + overlay into a fresh deterministic sorted CSR (the
//! durability matrix compares these bitwise).

use std::collections::HashMap;

use tufast_htm::{MemRegion, MemoryLayout, TxMemory};
use tufast_txn::{TxInterrupt, TxnOps, TxnWorker};

use crate::snapshot::{Section, Snapshot};
use crate::wal::Mutation;
use crate::{Graph, GraphBuilder, VertexId};

/// Size hint for one mutation transaction (`BEGIN(SIZE)`): meta + stripe
/// count + head + two slot words, with headroom for the retry-prone path.
pub const MUTATION_HINT: usize = 8;

/// Geometry of the delta overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlayConfig {
    /// Total delta slots (rounded down to a multiple of `stripes`).
    pub slot_cap: u64,
    /// Allocation stripes (clamped to `1..=capacity`).
    pub stripes: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            slot_cap: 1 << 16,
            stripes: 64,
        }
    }
}

/// What a mutation transaction did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOutcome {
    /// The mutation committed.
    Applied,
    /// An endpoint is outside the live vertex set — nothing was written.
    OutOfBounds,
    /// The overlay (or vertex capacity) is exhausted — nothing was
    /// written; checkpoint to fold the overlay into a new base.
    OverlayFull,
}

/// CSR base + transactional delta overlay. See the module docs.
pub struct MutableGraph {
    base: Graph,
    capacity: usize,
    stripes: u64,
    per_stripe: u64,
    head: MemRegion,
    slots: MemRegion,
    arena: MemRegion,
    meta: MemRegion,
}

impl MutableGraph {
    /// Carve the overlay regions for `base` (growable up to `capacity`
    /// vertices) out of `layout`. Call before `TxnSystem::build`, and
    /// build the system with at least `capacity` vertices so every vertex
    /// tag has a lock word.
    ///
    /// # Panics
    /// If `capacity` is 0, smaller than the base vertex count, or does not
    /// fit a `u32` vertex id.
    pub fn carve(
        base: Graph,
        capacity: usize,
        config: OverlayConfig,
        layout: &mut MemoryLayout,
    ) -> MutableGraph {
        assert!(capacity > 0, "capacity must be nonzero");
        assert!(
            capacity >= base.num_vertices(),
            "capacity {} below base vertex count {}",
            capacity,
            base.num_vertices()
        );
        assert!(capacity < u32::MAX as usize, "vertex id overflow");
        let stripes = config.stripes.clamp(1, capacity as u64);
        let per_stripe = config.slot_cap / stripes;
        let slot_cap = per_stripe * stripes;
        let head = layout.alloc("mg.head", capacity as u64);
        let slots = layout.alloc("mg.slots", (slot_cap * 2).max(1));
        let arena = layout.alloc("mg.arena", stripes);
        let meta = layout.alloc("mg.meta", 1);
        MutableGraph {
            base,
            capacity,
            stripes,
            per_stripe,
            head,
            slots,
            arena,
            meta,
        }
    }

    /// Initialise overlay state in fresh (zeroed) memory: only the live
    /// vertex count needs seeding. Recovery calls
    /// [`MutableGraph::restore_sections`] instead.
    pub fn init(&self, mem: &TxMemory) {
        mem.store_direct(self.meta.addr(0), self.base.num_vertices() as u64);
    }

    /// The immutable CSR base.
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Maximum vertex count the overlay supports.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Effective total delta slots (after stripe rounding).
    pub fn slot_cap(&self) -> u64 {
        self.per_stripe * self.stripes
    }

    /// Allocation stripes.
    pub fn stripes(&self) -> u64 {
        self.stripes
    }

    /// Live vertex count (quiescent read).
    pub fn num_vertices(&self, mem: &TxMemory) -> usize {
        mem.load_direct(self.meta.addr(0)) as usize
    }

    /// Delta slots consumed so far (quiescent read).
    pub fn slots_used(&self, mem: &TxMemory) -> u64 {
        self.arena.iter().map(|a| mem.load_direct(a)).sum()
    }

    /// Whether `v`'s allocation stripe has no free delta slots left
    /// (quiescent read — the durable commit path pre-validates with this
    /// under the commit lock so a full stripe is rejected *before* the
    /// mutation reaches the log).
    pub fn stripe_is_full(&self, mem: &TxMemory, v: VertexId) -> bool {
        mem.load_direct(self.arena.addr(self.stripe_of(v))) >= self.per_stripe
    }

    /// Half-open word-address range covering every overlay region, for
    /// history post-processing (`History::tag_mutations`): any transaction
    /// that *writes* into this range is a mutation transaction.
    pub fn overlay_word_range(&self) -> std::ops::Range<u64> {
        let regions = [&self.head, &self.slots, &self.arena, &self.meta];
        let lo = regions.iter().map(|r| r.base().0).min().expect("4 regions");
        let hi = regions
            .iter()
            .map(|r| r.base().0 + r.len())
            .max()
            .expect("4 regions");
        lo..hi
    }

    #[inline]
    fn stripe_of(&self, v: VertexId) -> u64 {
        u64::from(v) % self.stripes
    }

    /// Apply one mutation inside a transaction body. Rejections
    /// ([`MutationOutcome::OutOfBounds`] / [`MutationOutcome::OverlayFull`])
    /// return *before any write*, so the transaction commits read-only.
    pub fn txn_apply(
        &self,
        ops: &mut dyn TxnOps,
        mutation: Mutation,
    ) -> Result<MutationOutcome, TxInterrupt> {
        match mutation {
            Mutation::AddEdge { src, dst, weight } => {
                self.txn_push_delta(ops, src, dst, weight, false)
            }
            Mutation::RemoveEdge { src, dst } => self.txn_push_delta(ops, src, dst, 0, true),
            Mutation::AddVertex => Ok(self.txn_add_vertex(ops)?.0),
        }
    }

    fn txn_push_delta(
        &self,
        ops: &mut dyn TxnOps,
        src: VertexId,
        dst: VertexId,
        weight: u32,
        remove: bool,
    ) -> Result<MutationOutcome, TxInterrupt> {
        let live = ops.read(0, self.meta.addr(0))?;
        if u64::from(src) >= live || u64::from(dst) >= live {
            return Ok(MutationOutcome::OutOfBounds);
        }
        let stripe = self.stripe_of(src);
        let stripe_tag = stripe as VertexId;
        let used = ops.read(stripe_tag, self.arena.addr(stripe))?;
        if used >= self.per_stripe {
            return Ok(MutationOutcome::OverlayFull);
        }
        ops.write(stripe_tag, self.arena.addr(stripe), used + 1)?;
        let slot = stripe * self.per_stripe + used;
        let prev = ops.read(src, self.head.addr(u64::from(src)))?;
        ops.write(
            src,
            self.slots.addr(2 * slot),
            (u64::from(weight) << 32) | u64::from(dst),
        )?;
        ops.write(
            src,
            self.slots.addr(2 * slot + 1),
            (u64::from(remove) << 63) | prev,
        )?;
        ops.write(src, self.head.addr(u64::from(src)), slot + 1)?;
        Ok(MutationOutcome::Applied)
    }

    fn txn_add_vertex(
        &self,
        ops: &mut dyn TxnOps,
    ) -> Result<(MutationOutcome, Option<VertexId>), TxInterrupt> {
        let live = ops.read(0, self.meta.addr(0))?;
        if live >= self.capacity as u64 {
            return Ok((MutationOutcome::OverlayFull, None));
        }
        ops.write(0, self.meta.addr(0), live + 1)?;
        Ok((MutationOutcome::Applied, Some(live as VertexId)))
    }

    /// Run `add_edge(src → dst)` as one transaction on `worker`.
    pub fn add_edge<W: TxnWorker>(
        &self,
        worker: &mut W,
        src: VertexId,
        dst: VertexId,
        weight: u32,
    ) -> MutationOutcome {
        self.run(worker, Mutation::AddEdge { src, dst, weight }).0
    }

    /// Run `remove_edge(src → dst)` as one transaction on `worker`.
    pub fn remove_edge<W: TxnWorker>(
        &self,
        worker: &mut W,
        src: VertexId,
        dst: VertexId,
    ) -> MutationOutcome {
        self.run(worker, Mutation::RemoveEdge { src, dst }).0
    }

    /// Grow the vertex set by one as a transaction on `worker`; returns
    /// the new vertex id, or `None` at capacity.
    pub fn add_vertex<W: TxnWorker>(&self, worker: &mut W) -> Option<VertexId> {
        self.run(worker, Mutation::AddVertex).1
    }

    fn run<W: TxnWorker>(
        &self,
        worker: &mut W,
        mutation: Mutation,
    ) -> (MutationOutcome, Option<VertexId>) {
        let mut result = MutationOutcome::Applied;
        let mut new_id = None;
        let outcome = worker.execute(MUTATION_HINT, &mut |ops| {
            (result, new_id) = match mutation {
                Mutation::AddVertex => self.txn_add_vertex(ops)?,
                m => (self.txn_apply(ops, m)?, None),
            };
            Ok(())
        });
        debug_assert!(outcome.committed, "mutation bodies never user-abort");
        (result, new_id)
    }

    /// Apply one mutation directly to memory, outside any transaction —
    /// the redo-recovery replay path (single-threaded by construction).
    pub fn apply_direct(&self, mem: &TxMemory, mutation: Mutation) -> MutationOutcome {
        let mut ops = DirectOps(mem);
        self.txn_apply(&mut ops, mutation)
            .expect("direct ops are infallible")
    }

    /// Read vertex `u`'s *effective* adjacency (base ∪ adds \ removes,
    /// sorted by target, deduplicated) inside a transaction body. The
    /// reads subscribe to `u`'s chain words, so a concurrent mutation of
    /// `u` serializes against this read like any other conflict.
    pub fn txn_neighbors(
        &self,
        ops: &mut dyn TxnOps,
        u: VertexId,
        out: &mut Vec<(VertexId, u32)>,
    ) -> Result<(), TxInterrupt> {
        out.clear();
        let live = ops.read(0, self.meta.addr(0))?;
        if u64::from(u) >= live {
            return Ok(());
        }
        let newest = self.chain_newest_ops(ops, u)?;
        self.fold_vertex(u, &newest, |dst, w| out.push((dst, w)));
        out.sort_unstable();
        Ok(())
    }

    /// Newest-first delta ops for `u`: first occurrence of a target wins.
    fn chain_newest_ops(
        &self,
        ops: &mut dyn TxnOps,
        u: VertexId,
    ) -> Result<HashMap<VertexId, DeltaOp>, TxInterrupt> {
        let mut newest = HashMap::new();
        let mut cursor = ops.read(u, self.head.addr(u64::from(u)))?;
        let mut hops = 0u64;
        while cursor != 0 {
            debug_assert!(hops <= self.slot_cap(), "delta chain longer than the arena");
            if hops > self.slot_cap() {
                break;
            }
            hops += 1;
            let slot = cursor - 1;
            let word0 = ops.read(u, self.slots.addr(2 * slot))?;
            let word1 = ops.read(u, self.slots.addr(2 * slot + 1))?;
            let target = (word0 & 0xFFFF_FFFF) as VertexId;
            let weight = (word0 >> 32) as u32;
            let remove = (word1 >> 63) != 0;
            newest.entry(target).or_insert(DeltaOp { remove, weight });
            cursor = word1 & !(1 << 63);
        }
        Ok(newest)
    }

    /// Emit vertex `u`'s effective adjacency given its newest-op map.
    fn fold_vertex(
        &self,
        u: VertexId,
        newest: &HashMap<VertexId, DeltaOp>,
        mut emit: impl FnMut(VertexId, u32),
    ) {
        if (u as usize) < self.base.num_vertices() {
            let weights = self.base.weights();
            for (i, &dst) in self.base.neighbors(u).iter().enumerate() {
                if newest.contains_key(&dst) {
                    continue; // overridden: re-added or removed below
                }
                let w = weights.map_or(0, |ws| ws[self.base.edge_range(u).start + i]);
                emit(dst, w);
            }
        }
        for (&dst, op) in newest {
            if !op.remove {
                emit(dst, op.weight);
            }
        }
    }

    /// Fold base + overlay into a fresh deterministic sorted CSR
    /// (quiescent read: no concurrent mutators). Preserves weighted-ness
    /// and in-edge materialisation of the base; two graphs with the same
    /// committed mutation history materialize bitwise-identically.
    pub fn materialize(&self, mem: &TxMemory) -> Graph {
        let nv = self.num_vertices(mem);
        let mut builder = GraphBuilder::new(nv);
        if self.base.reverse().is_some() {
            builder = builder.with_in_edges();
        }
        let weighted = self.base.has_weights();
        let mut ops = DirectOps(mem);
        for u in 0..nv as VertexId {
            let newest = self
                .chain_newest_ops(&mut ops, u)
                .expect("direct ops are infallible");
            self.fold_vertex(u, &newest, |dst, w| {
                if weighted {
                    builder.add_weighted_edge(u, dst, w);
                } else {
                    builder.add_edge(u, dst);
                }
            });
        }
        builder.build()
    }

    /// Capture the overlay as TFSN delta sections (quiescent read), for
    /// the checkpoint that lets the WAL be truncated.
    pub fn capture_sections(&self, mem: &TxMemory) -> Vec<Section> {
        self.named_regions()
            .into_iter()
            .map(|(name, region)| Section {
                name: name.to_string(),
                words: mem.snapshot_region(region),
            })
            .collect()
    }

    /// Restore the overlay from a snapshot's delta sections. Fails (with a
    /// message) when a section is missing or its length does not match the
    /// carved geometry — the caller falls back to replaying the full WAL.
    pub fn restore_sections(&self, mem: &TxMemory, snap: &Snapshot) -> Result<(), String> {
        for (name, region) in self.named_regions() {
            let section = snap
                .section(name)
                .ok_or_else(|| format!("snapshot is missing section {name:?}"))?;
            if section.words.len() as u64 != region.len() {
                return Err(format!(
                    "section {name:?} has {} words, layout expects {}",
                    section.words.len(),
                    region.len()
                ));
            }
            for (i, &w) in section.words.iter().enumerate() {
                mem.store_direct(region.addr(i as u64), w);
            }
        }
        Ok(())
    }

    fn named_regions(&self) -> [(&'static str, &MemRegion); 4] {
        [
            ("delta.head", &self.head),
            ("delta.slots", &self.slots),
            ("delta.arena", &self.arena),
            ("delta.meta", &self.meta),
        ]
    }
}

impl std::fmt::Debug for MutableGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableGraph")
            .field("base_vertices", &self.base.num_vertices())
            .field("base_edges", &self.base.num_edges())
            .field("capacity", &self.capacity)
            .field("slot_cap", &self.slot_cap())
            .field("stripes", &self.stripes)
            .finish()
    }
}

#[derive(Clone, Copy)]
struct DeltaOp {
    remove: bool,
    weight: u32,
}

/// Infallible [`TxnOps`] straight onto memory — the recovery replay and
/// materialisation path (single-threaded, quiescent by construction).
struct DirectOps<'a>(&'a TxMemory);

impl TxnOps for DirectOps<'_> {
    fn read(&mut self, _v: VertexId, addr: tufast_htm::Addr) -> Result<u64, TxInterrupt> {
        Ok(self.0.load_direct(addr))
    }

    fn write(&mut self, _v: VertexId, addr: tufast_htm::Addr, val: u64) -> Result<(), TxInterrupt> {
        self.0.store_direct(addr, val);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(i as VertexId, i as VertexId + 1);
        }
        b.build()
    }

    fn setup(base: Graph, capacity: usize) -> (MutableGraph, TxMemory) {
        let mut layout = MemoryLayout::new();
        let mg = MutableGraph::carve(
            base,
            capacity,
            OverlayConfig {
                slot_cap: 64,
                stripes: 4,
            },
            &mut layout,
        );
        let mem = TxMemory::new(&layout);
        mg.init(&mem);
        (mg, mem)
    }

    fn edges_of(g: &Graph) -> Vec<(VertexId, VertexId)> {
        g.edges().collect()
    }

    #[test]
    fn direct_add_and_remove_fold_into_materialize() {
        let (mg, mem) = setup(line_graph(4), 8);
        assert_eq!(
            mg.apply_direct(
                &mem,
                Mutation::AddEdge {
                    src: 3,
                    dst: 0,
                    weight: 0
                }
            ),
            MutationOutcome::Applied
        );
        assert_eq!(
            mg.apply_direct(&mem, Mutation::RemoveEdge { src: 1, dst: 2 }),
            MutationOutcome::Applied
        );
        let g = mg.materialize(&mem);
        assert_eq!(edges_of(&g), vec![(0, 1), (2, 3), (3, 0)]);
    }

    #[test]
    fn newest_op_wins_per_edge() {
        let (mg, mem) = setup(line_graph(3), 8);
        // remove then re-add 0→1; add then remove 2→0.
        mg.apply_direct(&mem, Mutation::RemoveEdge { src: 0, dst: 1 });
        mg.apply_direct(
            &mem,
            Mutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 0,
            },
        );
        mg.apply_direct(
            &mem,
            Mutation::AddEdge {
                src: 2,
                dst: 0,
                weight: 0,
            },
        );
        mg.apply_direct(&mem, Mutation::RemoveEdge { src: 2, dst: 0 });
        let g = mg.materialize(&mem);
        assert_eq!(edges_of(&g), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn add_vertex_grows_the_live_set() {
        let (mg, mem) = setup(line_graph(2), 4);
        assert_eq!(
            mg.apply_direct(
                &mem,
                Mutation::AddEdge {
                    src: 0,
                    dst: 2,
                    weight: 0
                }
            ),
            MutationOutcome::OutOfBounds,
            "vertex 2 does not exist yet"
        );
        mg.apply_direct(&mem, Mutation::AddVertex);
        assert_eq!(mg.num_vertices(&mem), 3);
        assert_eq!(
            mg.apply_direct(
                &mem,
                Mutation::AddEdge {
                    src: 0,
                    dst: 2,
                    weight: 0
                }
            ),
            MutationOutcome::Applied
        );
        let g = mg.materialize(&mem);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(edges_of(&g), vec![(0, 1), (0, 2)]);
        // Capacity is a hard stop.
        mg.apply_direct(&mem, Mutation::AddVertex);
        assert_eq!(
            mg.apply_direct(&mem, Mutation::AddVertex),
            MutationOutcome::OverlayFull
        );
    }

    #[test]
    fn overlay_full_rejects_without_writing() {
        let mut layout = MemoryLayout::new();
        let mg = MutableGraph::carve(
            line_graph(4),
            4,
            OverlayConfig {
                slot_cap: 2,
                stripes: 1,
            },
            &mut layout,
        );
        let mem = TxMemory::new(&layout);
        mg.init(&mem);
        assert_eq!(
            mg.apply_direct(
                &mem,
                Mutation::AddEdge {
                    src: 0,
                    dst: 2,
                    weight: 0
                }
            ),
            MutationOutcome::Applied
        );
        assert_eq!(
            mg.apply_direct(
                &mem,
                Mutation::AddEdge {
                    src: 0,
                    dst: 3,
                    weight: 0
                }
            ),
            MutationOutcome::Applied
        );
        assert_eq!(
            mg.apply_direct(
                &mem,
                Mutation::AddEdge {
                    src: 1,
                    dst: 3,
                    weight: 0
                }
            ),
            MutationOutcome::OverlayFull
        );
        assert_eq!(mg.slots_used(&mem), 2);
        // The rejected mutation left no trace.
        assert_eq!(
            edges_of(&mg.materialize(&mem)),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]
        );
    }

    #[test]
    fn weighted_base_keeps_weights_and_newest_add_overrides() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5);
        b.add_weighted_edge(1, 2, 9);
        let (mg, mem) = setup(b.build(), 4);
        mg.apply_direct(
            &mem,
            Mutation::AddEdge {
                src: 0,
                dst: 1,
                weight: 42,
            },
        );
        mg.apply_direct(
            &mem,
            Mutation::AddEdge {
                src: 2,
                dst: 0,
                weight: 7,
            },
        );
        let g = mg.materialize(&mem);
        assert_eq!(g.weighted_neighbors(0).collect::<Vec<_>>(), vec![(1, 42)]);
        assert_eq!(g.weighted_neighbors(1).collect::<Vec<_>>(), vec![(2, 9)]);
        assert_eq!(g.weighted_neighbors(2).collect::<Vec<_>>(), vec![(0, 7)]);
    }

    #[test]
    fn capture_restore_roundtrip_is_exact() {
        let (mg, mem) = setup(line_graph(4), 8);
        mg.apply_direct(
            &mem,
            Mutation::AddEdge {
                src: 2,
                dst: 0,
                weight: 0,
            },
        );
        mg.apply_direct(&mem, Mutation::RemoveEdge { src: 0, dst: 1 });
        mg.apply_direct(&mem, Mutation::AddVertex);
        let sections = mg.capture_sections(&mem);
        let snap = Snapshot {
            algo: "mutgraph".into(),
            epoch: 3,
            sections,
        };
        let before = mg.materialize(&mem);

        // A "fresh process": same carve order, zeroed memory, restore.
        let mut layout = MemoryLayout::new();
        let mg2 = MutableGraph::carve(
            line_graph(4),
            8,
            OverlayConfig {
                slot_cap: 64,
                stripes: 4,
            },
            &mut layout,
        );
        let mem2 = TxMemory::new(&layout);
        mg2.restore_sections(&mem2, &snap).unwrap();
        let after = mg2.materialize(&mem2);
        assert_eq!(before, after);
        assert_eq!(mg2.num_vertices(&mem2), 5);
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let (mg, mem) = setup(line_graph(4), 8);
        let mut sections = mg.capture_sections(&mem);
        sections.retain(|s| s.name != "delta.arena");
        let snap = Snapshot {
            algo: "mutgraph".into(),
            epoch: 1,
            sections,
        };
        assert!(mg.restore_sections(&mem, &snap).is_err());

        let mut sections = mg.capture_sections(&mem);
        sections
            .iter_mut()
            .find(|s| s.name == "delta.head")
            .unwrap()
            .words
            .pop();
        let snap = Snapshot {
            algo: "mutgraph".into(),
            epoch: 1,
            sections,
        };
        assert!(mg.restore_sections(&mem, &snap).is_err());
    }

    #[test]
    fn overlay_word_range_covers_every_region() {
        let (mg, _mem) = setup(line_graph(2), 4);
        let range = mg.overlay_word_range();
        for (_, region) in mg.named_regions() {
            assert!(range.contains(&region.base().0));
            assert!(range.contains(&(region.base().0 + region.len() - 1)));
        }
    }
}
