//! Vertex partitioners for the simulated distributed engines (paper Fig. 12).
//!
//! PowerGraph partitions by *vertex-cut*, PowerLyra by *hybrid-cut*
//! (vertex-cut only for high-degree vertices). For the cost model in
//! `tufast-engines::gas` what matters is (a) which machine owns each vertex
//! and (b) how many remote replicas (mirrors) each vertex needs — the
//! replication factor drives the simulated communication volume.

use crate::csr::{Graph, VertexId};

/// A vertex-to-machine assignment plus mirror counts.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Number of machines.
    pub machines: usize,
    /// `owner[v]` = machine that owns vertex `v`.
    pub owner: Vec<u32>,
    /// `mirrors[v]` = number of machines (excluding the owner) holding a
    /// replica of `v` because an incident edge lives there.
    pub mirrors: Vec<u32>,
}

impl Partition {
    /// Average number of replicas per vertex (owner + mirrors) — the
    /// replication factor reported in the PowerGraph/PowerLyra papers.
    pub fn replication_factor(&self) -> f64 {
        if self.owner.is_empty() {
            return 0.0;
        }
        let total: u64 = self.mirrors.iter().map(|&m| u64::from(m) + 1).sum();
        total as f64 / self.owner.len() as f64
    }

    /// Vertices owned by each machine.
    pub fn owned_per_machine(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.machines];
        for &o in &self.owner {
            counts[o as usize] += 1;
        }
        counts
    }
}

#[inline]
fn hash_vertex(v: VertexId) -> u64 {
    u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[inline]
fn owner_of(v: VertexId, machines: usize) -> u32 {
    (hash_vertex(v) % machines as u64) as u32
}

fn mirrors_for(g: &Graph, owner: &[u32], machines: usize) -> Vec<u32> {
    let mut mirrors = vec![0u32; g.num_vertices()];
    let mut seen = vec![u64::MAX; g.num_vertices()]; // bitmap per vertex would be big; use u64 as machine set (machines ≤ 64)
    assert!(
        machines <= 64,
        "cost model supports up to 64 simulated machines"
    );
    for v in g.vertices() {
        seen[v as usize] = 0;
    }
    for (s, d) in g.edges() {
        // An edge is placed on the machine owning its source (edge-cut
        // placement); both endpoints need replicas there.
        let m = owner[s as usize];
        for &v in &[s, d] {
            let bit = 1u64 << m;
            if owner[v as usize] != m && seen[v as usize] & bit == 0 {
                seen[v as usize] |= bit;
                mirrors[v as usize] += 1;
            }
        }
    }
    mirrors
}

/// Hash (edge-cut) partition: every vertex hashed to a machine, edges
/// placed with their source — PowerGraph's baseline "random" placement.
pub fn hash_partition(g: &Graph, machines: usize) -> Partition {
    assert!(machines >= 1);
    let owner: Vec<u32> = g.vertices().map(|v| owner_of(v, machines)).collect();
    let mirrors = mirrors_for(g, &owner, machines);
    Partition {
        machines,
        owner,
        mirrors,
    }
}

/// Hybrid-cut (PowerLyra-like): low-degree vertices are hash-placed with
/// all their in-edges (low replication), while edges incident to
/// high-degree vertices are scattered by the *other* endpoint, modelled
/// here by counting one mirror per distinct neighbouring machine of the
/// hub. `threshold` is the in/out-degree above which a vertex counts as
/// "high" (PowerLyra's θ).
pub fn hybrid_partition(g: &Graph, machines: usize, threshold: usize) -> Partition {
    assert!((1..=64).contains(&machines));
    let owner: Vec<u32> = g.vertices().map(|v| owner_of(v, machines)).collect();
    let mut mirrors = vec![0u32; g.num_vertices()];
    let mut seen = vec![0u64; g.num_vertices()];
    for (s, d) in g.edges() {
        // Low-degree source: edge goes to the source's owner (edge-cut),
        // creating a mirror for `d` there. High-degree source: the edge is
        // placed at `d`'s owner instead (vertex-cut of the hub), creating a
        // mirror for `s` there.
        let (placed_at, mirrored) = if g.degree(s) <= threshold {
            (owner[s as usize], d)
        } else {
            (owner[d as usize], s)
        };
        if owner[mirrored as usize] != placed_at {
            let bit = 1u64 << placed_at;
            if seen[mirrored as usize] & bit == 0 {
                seen[mirrored as usize] |= bit;
                mirrors[mirrored as usize] += 1;
            }
        }
    }
    Partition {
        machines,
        owner,
        mirrors,
    }
}

/// Contiguous range partition (used by the out-of-core shard model).
pub fn range_partition(g: &Graph, machines: usize) -> Partition {
    assert!((1..=64).contains(&machines));
    let n = g.num_vertices();
    let per = n.div_ceil(machines);
    let owner: Vec<u32> = g
        .vertices()
        .map(|v| (v as usize / per.max(1)) as u32)
        .collect();
    let mirrors = mirrors_for(g, &owner, machines);
    Partition {
        machines,
        owner,
        mirrors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn hash_partition_covers_all_machines() {
        let g = gen::rmat(10, 8, 1);
        let p = hash_partition(&g, 8);
        let counts = p.owned_per_machine();
        assert_eq!(counts.iter().sum::<usize>(), g.num_vertices());
        assert!(
            counts.iter().all(|&c| c > 0),
            "some machine owns nothing: {counts:?}"
        );
    }

    #[test]
    fn single_machine_has_no_mirrors() {
        let g = gen::rmat(8, 8, 1);
        let p = hash_partition(&g, 1);
        assert!(p.mirrors.iter().all(|&m| m == 0));
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replication_grows_with_machines() {
        let g = gen::rmat(10, 8, 1);
        let p2 = hash_partition(&g, 2);
        let p16 = hash_partition(&g, 16);
        assert!(p16.replication_factor() > p2.replication_factor());
    }

    #[test]
    fn hybrid_cut_reduces_replication_on_power_law() {
        // PowerLyra's claim: hybrid-cut beats random edge-cut replication on
        // skewed graphs. Our cost model must reproduce at least the ordering.
        let g = gen::rmat(12, 16, 3);
        let hash = hash_partition(&g, 16);
        let hybrid = hybrid_partition(&g, 16, 100);
        assert!(
            hybrid.replication_factor() <= hash.replication_factor(),
            "hybrid {} vs hash {}",
            hybrid.replication_factor(),
            hash.replication_factor()
        );
    }

    #[test]
    fn range_partition_is_contiguous() {
        let g = gen::path(100);
        let p = range_partition(&g, 4);
        assert!(p.owner.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.owned_per_machine(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn mirror_count_on_a_known_cut() {
        // Path 0→1 with 2 machines and range partition: vertex 1 mirrors on
        // machine 0 (edge placed with source 0) unless co-located.
        let g = gen::path(2);
        let p = range_partition(&g, 2);
        assert_eq!(p.owner, vec![0, 1]);
        assert_eq!(p.mirrors, vec![0, 1]);
    }
}
