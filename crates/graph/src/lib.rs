//! # tufast-graph — graph storage, generation, and statistics
//!
//! The graph substrate for the TuFast reproduction:
//!
//! * [`Graph`] — compressed sparse row (CSR) adjacency with optional
//!   in-edges and optional edge weights, built through [`GraphBuilder`].
//! * [`gen`] — seeded synthetic generators. The paper's evaluation graphs
//!   (friendster, twitter-mpi, sk-2005, uk-2007-05; 1.8–3.7 B edges) are
//!   replaced by laptop-scale stand-ins with matched average degree and
//!   power-law skew: [`gen::rmat`] and [`gen::barabasi_albert`] for the
//!   social/web graphs, [`gen::erdos_renyi`] for the even-degree synthetic
//!   workload of the paper's Figure 7, [`gen::grid2d`] for road-like graphs.
//! * [`stats`] — degree distributions and the log-binned histogram used to
//!   regenerate the paper's Figure 5.
//! * [`load`] — SNAP-format edge-list reader/writer so the real datasets can
//!   be dropped in where disk and memory allow.
//! * [`binio`] — a binary CSR cache format (parse the edge list once, then
//!   reload in a few large reads).
//! * [`snapshot`] — versioned, checksummed algorithm checkpoints (TFSN)
//!   with a two-generation rotating store for crash recovery.
//! * [`mutable`] — [`MutableGraph`]: CSR base plus a transactional
//!   per-vertex delta overlay, so `add_edge`/`remove_edge`/`add_vertex`
//!   run as transactions through any scheduler, serializable alongside
//!   analytics.
//! * [`wal`] — the CRC-framed write-ahead log (TFWL) mutation commits are
//!   appended to before their effects become visible.
//! * [`durable`] — [`DurableGraph`]: the WAL + snapshot + redo-recovery
//!   commit protocol tying the two together (DESIGN.md §13).
//! * [`partition`] — vertex partitioners (hash, range, hybrid-cut) for the
//!   simulated distributed engines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binio;
mod builder;
mod csr;
pub mod durable;
pub mod gen;
pub mod load;
pub mod mutable;
pub mod partition;
pub mod snapshot;
pub mod stats;
pub mod wal;

pub use builder::GraphBuilder;
pub use csr::{Csr, Graph, VertexId};
pub use durable::{DurableGraph, DurableOpen, RecoveryReport};
pub use mutable::{MutableGraph, OverlayConfig};
