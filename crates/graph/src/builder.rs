//! Edge-list accumulation and CSR construction.

use crate::csr::{Csr, Graph, VertexId};

/// Accumulates edges and builds a [`Graph`].
///
/// The builder sorts edges by `(src, dst)`, removes duplicates and
/// self-loops by default (the paper's analytics treat graphs as simple),
/// and can symmetrise (for the undirected MIS/matching workloads) and
/// materialise in-edges (for pull-style PageRank).
#[derive(Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    weights: Vec<u32>,
    weighted: bool,
    keep_duplicates: bool,
    keep_self_loops: bool,
    symmetric: bool,
    in_edges: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        assert!(num_vertices < u32::MAX as usize, "vertex id overflow");
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            weights: Vec::new(),
            weighted: false,
            keep_duplicates: false,
            keep_self_loops: false,
            symmetric: false,
            in_edges: false,
        }
    }

    /// Pre-size the edge buffer.
    pub fn with_edge_capacity(mut self, cap: usize) -> Self {
        self.edges.reserve(cap);
        self
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// If either endpoint is out of range, or if weighted edges were added
    /// before (mixing is an error).
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) {
        assert!(!self.weighted, "cannot mix weighted and unweighted edges");
        self.check(src, dst);
        self.edges.push((src, dst));
    }

    /// Add a directed edge with a weight.
    pub fn add_weighted_edge(&mut self, src: VertexId, dst: VertexId, weight: u32) {
        assert!(
            self.weights.len() == self.edges.len(),
            "cannot mix weighted and unweighted edges"
        );
        self.weighted = true;
        self.check(src, dst);
        self.edges.push((src, dst));
        self.weights.push(weight);
    }

    #[inline]
    fn check(&self, src: VertexId, dst: VertexId) {
        assert!((src as usize) < self.num_vertices, "src {src} out of range");
        assert!((dst as usize) < self.num_vertices, "dst {dst} out of range");
    }

    /// Keep parallel edges instead of deduplicating.
    pub fn keep_duplicates(mut self) -> Self {
        self.keep_duplicates = true;
        self
    }

    /// Keep self-loops instead of dropping them.
    pub fn keep_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Add the reverse of every edge before building (undirected view).
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Materialise the reverse adjacency as well.
    pub fn with_in_edges(mut self) -> Self {
        self.in_edges = true;
        self
    }

    /// Number of edges currently buffered.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are buffered.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Build the graph, consuming the builder.
    pub fn build(self) -> Graph {
        let GraphBuilder {
            num_vertices,
            mut edges,
            mut weights,
            weighted,
            keep_duplicates,
            keep_self_loops,
            symmetric,
            in_edges,
        } = self;

        if symmetric {
            let fwd = edges.len();
            edges.reserve(fwd);
            for i in 0..fwd {
                let (s, d) = edges[i];
                edges.push((d, s));
            }
            if weighted {
                weights.reserve(fwd);
                for i in 0..fwd {
                    let w = weights[i];
                    weights.push(w);
                }
            }
        }

        // Sort edges (carrying weights along) and clean.
        let (out, out_weights) = build_csr(
            num_vertices,
            &mut edges,
            if weighted { Some(&mut weights) } else { None },
            keep_duplicates,
            keep_self_loops,
        );

        let rev = in_edges.then(|| {
            let mut rev_edges: Vec<(VertexId, VertexId)> =
                out.new_edges_iter().map(|(s, d)| (d, s)).collect();
            // Already deduped/cleaned in the forward pass.
            let (csr, _) = build_csr(num_vertices, &mut rev_edges, None, true, true);
            csr
        });

        Graph::from_parts(out, rev, out_weights)
    }
}

impl Csr {
    fn new_edges_iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }
}

fn build_csr(
    num_vertices: usize,
    edges: &mut Vec<(VertexId, VertexId)>,
    mut weights: Option<&mut Vec<u32>>,
    keep_duplicates: bool,
    keep_self_loops: bool,
) -> (Csr, Option<Vec<u32>>) {
    // Sort by (src, dst); when weighted, sort an index permutation so weights
    // travel with their edges (smallest weight wins among duplicates, making
    // dedup deterministic).
    let (sorted_edges, sorted_weights): (Vec<(VertexId, VertexId)>, Option<Vec<u32>>) =
        if let Some(w) = &mut weights {
            let mut perm: Vec<usize> = (0..edges.len()).collect();
            perm.sort_unstable_by_key(|&i| (edges[i], w[i]));
            (
                perm.iter().map(|&i| edges[i]).collect(),
                Some(perm.iter().map(|&i| w[i]).collect()),
            )
        } else {
            edges.sort_unstable();
            (std::mem::take(edges), None)
        };

    let mut offsets = vec![0u64; num_vertices + 1];
    let mut targets = Vec::with_capacity(sorted_edges.len());
    let mut out_weights = sorted_weights
        .as_ref()
        .map(|_| Vec::with_capacity(sorted_edges.len()));
    let mut prev: Option<(VertexId, VertexId)> = None;
    for (i, &(s, d)) in sorted_edges.iter().enumerate() {
        if !keep_self_loops && s == d {
            continue;
        }
        if !keep_duplicates && prev == Some((s, d)) {
            continue;
        }
        prev = Some((s, d));
        offsets[s as usize + 1] += 1;
        targets.push(d);
        if let (Some(ow), Some(sw)) = (&mut out_weights, &sorted_weights) {
            ow.push(sw[i]);
        }
    }
    for i in 0..num_vertices {
        offsets[i + 1] += offsets[i];
    }
    (Csr::new(offsets, targets), out_weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn keep_duplicates_and_loops_when_requested() {
        let mut b = GraphBuilder::new(2).keep_duplicates().keep_self_loops();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 1]);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn symmetric_adds_reverse_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.symmetric().build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn symmetric_dedups_mutual_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.symmetric().build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weights_follow_edges_through_sorting() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(2, 0, 99);
        b.add_weighted_edge(0, 2, 7);
        b.add_weighted_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(
            g.weighted_neighbors(0).collect::<Vec<_>>(),
            vec![(1, 5), (2, 7)]
        );
        assert_eq!(g.weighted_neighbors(2).collect::<Vec<_>>(), vec![(0, 99)]);
    }

    #[test]
    fn duplicate_weighted_edges_keep_smallest_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 9);
        b.add_weighted_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.weighted_neighbors(0).collect::<Vec<_>>(), vec![(1, 3)]);
    }

    #[test]
    fn symmetric_weighted_graph_mirrors_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 4);
        let g = b.symmetric().build();
        assert_eq!(g.weighted_neighbors(1).collect::<Vec<_>>(), vec![(0, 4)]);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "mix")]
    fn mixing_weighted_and_unweighted_panics() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_weighted_edge(1, 2, 1);
    }
}
