//! Write-ahead log for durable graph mutations (TFWL format).
//!
//! Every mutation transaction appends one CRC-32-framed commit record
//! *before* its effects become visible in transactional memory; redo
//! recovery ([`crate::durable`]) replays the log on top of the newest
//! valid TFSN snapshot. The format is designed so that no on-disk
//! corruption can panic the reader, and so that a torn tail (the residue
//! of a crash mid-`write`) is detected and truncated on open:
//!
//! ```text
//! header (36 bytes):
//!   magic "TFWL" | version u32 | capacity u64 | slot_cap u64 |
//!   stripes u64 | header_crc u32            — CRC-32 of the 32 bytes above
//! per record (29 bytes):
//!   len u32                                 — payload length (always 13)
//!   lsn u64                                 — strictly +1 per record
//!   payload: op u8 | a u32 | b u32 | w u32
//!   crc u32                                 — CRC-32 of len | lsn | payload
//! ```
//!
//! The header carries the delta-overlay geometry
//! ([`crate::mutable::OverlayConfig`] fields) so recovery can carve an
//! identical memory layout before any snapshot exists.
//!
//! Durability protocol (DESIGN.md §13):
//!
//! * **Append before visibility** — the durable commit path holds a commit
//!   lock across append → fsync → transactional apply, so log order *is*
//!   commit order and every record's effects follow its frame.
//! * **Group commit** — [`SyncPolicy::Group`] batches fsyncs; commits
//!   acknowledged between syncs are durable only after the next sync (the
//!   standard group-commit contract).
//! * **Torn-tail truncation** — [`WalWriter::open`] validates every frame
//!   (length, CRC, LSN continuity) and truncates the file at the first
//!   invalid byte, so a crash mid-append costs exactly the torn record.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tufast_txn::{raise_injected_crash, FaultHandle};

use crate::snapshot::crc32;
use crate::VertexId;

const MAGIC: &[u8; 4] = b"TFWL";
const VERSION: u32 = 1;
/// Header size in bytes: magic + version + three u64 geometry fields + CRC.
pub const HEADER_LEN: u64 = 4 + 4 + 8 + 8 + 8 + 4;
/// Fixed payload size of one record.
const PAYLOAD_LEN: u32 = 1 + 4 + 4 + 4;
/// Full frame size of one record.
pub const FRAME_LEN: u64 = 4 + 8 + PAYLOAD_LEN as u64 + 4;

/// Pseudo worker id under which WAL fault probes report injected crashes.
const WAL_WORKER: u32 = u32::MAX - 1;

/// Errors from WAL I/O.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a TFWL file, or a structurally invalid header.
    Format(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Format(m) => write!(f, "bad TFWL log: {m}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One logged graph mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Add the directed edge `src → dst` (weight ignored on unweighted
    /// graphs).
    AddEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
        /// Edge weight (0 when unweighted).
        weight: u32,
    },
    /// Remove the directed edge `src → dst` (base and overlay copies).
    RemoveEdge {
        /// Source vertex.
        src: VertexId,
        /// Target vertex.
        dst: VertexId,
    },
    /// Grow the vertex set by one (the new id is the pre-mutation count).
    AddVertex,
}

impl Mutation {
    fn encode(self) -> [u8; PAYLOAD_LEN as usize] {
        let (op, a, b, w) = match self {
            Mutation::AddEdge { src, dst, weight } => (1u8, src, dst, weight),
            Mutation::RemoveEdge { src, dst } => (2, src, dst, 0),
            Mutation::AddVertex => (3, 0, 0, 0),
        };
        let mut p = [0u8; PAYLOAD_LEN as usize];
        p[0] = op;
        p[1..5].copy_from_slice(&a.to_le_bytes());
        p[5..9].copy_from_slice(&b.to_le_bytes());
        p[9..13].copy_from_slice(&w.to_le_bytes());
        p
    }

    fn decode(p: &[u8]) -> Option<Mutation> {
        let a = u32::from_le_bytes(p[1..5].try_into().ok()?);
        let b = u32::from_le_bytes(p[5..9].try_into().ok()?);
        let w = u32::from_le_bytes(p[9..13].try_into().ok()?);
        match p[0] {
            1 => Some(Mutation::AddEdge {
                src: a,
                dst: b,
                weight: w,
            }),
            2 => Some(Mutation::RemoveEdge { src: a, dst: b }),
            3 => Some(Mutation::AddVertex),
            _ => None,
        }
    }
}

/// One validated record read back from the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (strictly +1 per record).
    pub lsn: u64,
    /// The mutation it commits.
    pub mutation: Mutation,
}

/// Delta-overlay geometry carried in the log header, so recovery can carve
/// an identical [`MemoryLayout`](tufast_htm::MemoryLayout) before any
/// snapshot exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalHeader {
    /// Maximum vertex count the overlay supports.
    pub capacity: u64,
    /// Total delta slots.
    pub slot_cap: u64,
    /// Slot-arena stripes.
    pub stripes: u64,
}

impl WalHeader {
    fn encode(self) -> [u8; HEADER_LEN as usize] {
        let mut h = [0u8; HEADER_LEN as usize];
        h[0..4].copy_from_slice(MAGIC);
        h[4..8].copy_from_slice(&VERSION.to_le_bytes());
        h[8..16].copy_from_slice(&self.capacity.to_le_bytes());
        h[16..24].copy_from_slice(&self.slot_cap.to_le_bytes());
        h[24..32].copy_from_slice(&self.stripes.to_le_bytes());
        let crc = crc32(&h[0..32]);
        h[32..36].copy_from_slice(&crc.to_le_bytes());
        h
    }
}

/// What [`WalWriter::open`] found on disk.
#[derive(Debug)]
pub struct WalOpenReport {
    /// The validated header.
    pub header: WalHeader,
    /// Every valid record, in LSN order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/garbage tail truncated away.
    pub truncated_bytes: u64,
}

/// Parse TFWL bytes without touching the filesystem: validates the header,
/// then scans records until the first invalid frame. Returns the header,
/// the valid records, and the byte length of the valid prefix (everything
/// past it is torn tail or garbage). Never panics on malformed input.
pub fn parse_bytes(bytes: &[u8]) -> Result<(WalHeader, Vec<WalRecord>, u64), WalError> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(WalError::Format(format!(
            "{} bytes is shorter than the {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    let h = &bytes[..HEADER_LEN as usize];
    if &h[0..4] != MAGIC {
        return Err(WalError::Format(format!("wrong magic {:?}", &h[0..4])));
    }
    let version = u32::from_le_bytes(h[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(WalError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let stored_crc = u32::from_le_bytes(h[32..36].try_into().expect("4 bytes"));
    if stored_crc != crc32(&h[0..32]) {
        return Err(WalError::Format("header checksum mismatch".into()));
    }
    let header = WalHeader {
        capacity: u64::from_le_bytes(h[8..16].try_into().expect("8 bytes")),
        slot_cap: u64::from_le_bytes(h[16..24].try_into().expect("8 bytes")),
        stripes: u64::from_le_bytes(h[24..32].try_into().expect("8 bytes")),
    };

    let mut records = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut prev_lsn: Option<u64> = None;
    while bytes.len() - offset >= FRAME_LEN as usize {
        let frame = &bytes[offset..offset + FRAME_LEN as usize];
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        if len != PAYLOAD_LEN {
            break; // garbage or future format: treat as end of valid log
        }
        let crc_end = FRAME_LEN as usize - 4;
        let stored = u32::from_le_bytes(frame[crc_end..].try_into().expect("4 bytes"));
        if stored != crc32(&frame[..crc_end]) {
            break; // torn or corrupt frame
        }
        let lsn = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        if let Some(prev) = prev_lsn {
            if lsn != prev + 1 {
                break; // stale residue from before a truncation
            }
        }
        let Some(mutation) = Mutation::decode(&frame[12..12 + PAYLOAD_LEN as usize]) else {
            break; // unknown opcode
        };
        records.push(WalRecord { lsn, mutation });
        prev_lsn = Some(lsn);
        offset += FRAME_LEN as usize;
    }
    Ok((header, records, offset as u64))
}

/// How aggressively commits are made durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every commit (durable the moment `add_edge` returns).
    EveryCommit,
    /// Group commit: fsync once every `max_pending` appends (and on
    /// [`WalWriter::sync_now`] / checkpoint). Commits acknowledged between
    /// syncs are durable only after the next sync.
    Group {
        /// Appends to batch per fsync (0 is treated as 1).
        max_pending: u32,
    },
}

/// Appending writer over one TFWL log file.
///
/// One writer at a time (the durable-graph commit lock guarantees this);
/// reading via [`parse_bytes`] is safe anytime.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    header: WalHeader,
    next_lsn: u64,
    written_len: u64,
    /// Length as of the last *really executed* fsync — lags `written_len`
    /// under group commit and whenever a lost-fsync fault lied. Shared so
    /// the durability harness can simulate the power cut that exposes the
    /// lie (truncate to this length, then recover).
    durable_len: Arc<AtomicU64>,
    pending: u32,
    policy: SyncPolicy,
    faults: FaultHandle,
}

impl WalWriter {
    /// Create a fresh log at `path` with `header` (fails if the file
    /// exists), write and sync the header, and return a writer positioned
    /// at LSN 1.
    pub fn create(
        path: &Path,
        header: WalHeader,
        policy: SyncPolicy,
    ) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            header,
            next_lsn: 1,
            written_len: HEADER_LEN,
            durable_len: Arc::new(AtomicU64::new(HEADER_LEN)),
            pending: 0,
            policy,
            faults: FaultHandle::none(),
        })
    }

    /// Open an existing log: validate the header, scan and return every
    /// valid record, and truncate any torn/garbage tail on disk. The
    /// writer resumes at `last LSN + 1` (callers recovering on top of a
    /// snapshot bump this with [`WalWriter::set_next_lsn`]).
    pub fn open(path: &Path, policy: SyncPolicy) -> Result<(WalWriter, WalOpenReport), WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (header, records, valid_len) = parse_bytes(&bytes)?;
        let truncated_bytes = bytes.len() as u64 - valid_len;
        if truncated_bytes > 0 {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let next_lsn = records.last().map_or(1, |r| r.lsn + 1);
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                header,
                next_lsn,
                written_len: valid_len,
                durable_len: Arc::new(AtomicU64::new(valid_len)),
                pending: 0,
                policy,
                faults: FaultHandle::none(),
            },
            WalOpenReport {
                header,
                records,
                truncated_bytes,
            },
        ))
    }

    /// The geometry header the log was created with.
    pub fn header(&self) -> WalHeader {
        self.header
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// LSN the next [`WalWriter::append`] will use.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Bytes written so far (header included), synced or not.
    pub fn written_len(&self) -> u64 {
        self.written_len
    }

    /// Force the next LSN (recovery sets `snapshot epoch + 1` when the
    /// snapshot is newer than every surviving record).
    pub fn set_next_lsn(&mut self, lsn: u64) {
        self.next_lsn = lsn;
    }

    /// Shared really-durable length — what would survive a power cut right
    /// now. The durability harness clones this before a crash run and
    /// truncates the file to it afterwards, simulating the page cache
    /// dying with the process.
    pub fn durable_len_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.durable_len)
    }

    /// Install the fault probes consulted at append/fsync/truncation.
    pub fn set_fault_handle(&mut self, faults: FaultHandle) {
        self.faults = faults;
    }

    /// Append one mutation record (not yet synced) and return its LSN.
    ///
    /// A seeded torn-write fault persists only a prefix of the frame and
    /// then dies ([`tufast_txn::InjectedCrash`]), modelling a crash
    /// mid-`write`.
    pub fn append(&mut self, mutation: Mutation) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let payload = mutation.encode();
        let mut frame = [0u8; FRAME_LEN as usize];
        frame[0..4].copy_from_slice(&PAYLOAD_LEN.to_le_bytes());
        frame[4..12].copy_from_slice(&lsn.to_le_bytes());
        frame[12..12 + PAYLOAD_LEN as usize].copy_from_slice(&payload);
        let crc_end = FRAME_LEN as usize - 4;
        let crc = crc32(&frame[..crc_end]);
        frame[crc_end..].copy_from_slice(&crc.to_le_bytes());

        if self.faults.wal_torn_append() {
            // Persist a torn prefix — what a crash in the middle of
            // `write(2)` leaves behind — then die. The sync makes the torn
            // bytes themselves durable, the worst case for the reader.
            let torn = &frame[..frame.len() / 2];
            self.file.write_all(torn)?;
            let _ = self.file.sync_data();
            raise_injected_crash(WAL_WORKER, lsn);
        }
        self.file.write_all(&frame)?;
        self.written_len += FRAME_LEN;
        self.next_lsn += 1;
        self.pending += 1;
        Ok(lsn)
    }

    /// Make the log durable per the sync policy: every commit, or once a
    /// group of `max_pending` has accumulated.
    pub fn commit_sync(&mut self) -> Result<(), WalError> {
        match self.policy {
            SyncPolicy::EveryCommit => self.sync_now(),
            SyncPolicy::Group { max_pending } => {
                if self.pending >= max_pending.max(1) {
                    self.sync_now()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// fsync the log now. A seeded lost-fsync fault reports success while
    /// leaving the really-durable length behind.
    pub fn sync_now(&mut self) -> Result<(), WalError> {
        if self.pending == 0 && self.durable_len.load(Ordering::Relaxed) == self.written_len {
            return Ok(());
        }
        self.pending = 0;
        if self.faults.wal_lost_fsync() {
            return Ok(()); // the lie: acknowledged, not durable
        }
        self.file.sync_data()?;
        self.durable_len.store(self.written_len, Ordering::Relaxed);
        Ok(())
    }

    /// Crash probe for the post-append / pre-apply window of a durable
    /// commit (consulted by the durable-graph commit path).
    pub fn commit_crash_point(&mut self) {
        self.faults.wal_commit_crash_point();
    }

    /// Truncate the log back to its header after a covering snapshot is
    /// durable. Probes the crash site both before and after the `set_len`,
    /// so the durability matrix can seed a death on either side.
    pub fn truncate_for_checkpoint(&mut self) -> Result<(), WalError> {
        self.faults.wal_truncation_crash_point();
        self.file.set_len(HEADER_LEN)?;
        self.file.sync_all()?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.written_len = HEADER_LEN;
        self.durable_len.store(HEADER_LEN, Ordering::Relaxed);
        self.pending = 0;
        self.faults.wal_truncation_crash_point();
        Ok(())
    }
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("next_lsn", &self.next_lsn)
            .field("written_len", &self.written_len)
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tufast-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("graph.wal")
    }

    fn header() -> WalHeader {
        WalHeader {
            capacity: 64,
            slot_cap: 128,
            stripes: 8,
        }
    }

    fn sample(i: u32) -> Mutation {
        match i % 3 {
            0 => Mutation::AddEdge {
                src: i,
                dst: i + 1,
                weight: i * 10,
            },
            1 => Mutation::RemoveEdge { src: i, dst: i + 2 },
            _ => Mutation::AddVertex,
        }
    }

    #[test]
    fn roundtrip_preserves_records_and_header() {
        let path = temp_wal("roundtrip");
        let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
        for i in 0..9 {
            let lsn = w.append(sample(i)).unwrap();
            assert_eq!(lsn, u64::from(i) + 1);
            w.commit_sync().unwrap();
        }
        drop(w);
        let (w, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
        assert_eq!(report.header, header());
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.records.len(), 9);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
            assert_eq!(r.mutation, sample(i as u32));
        }
        assert_eq!(w.next_lsn(), 10);
    }

    #[test]
    fn create_refuses_to_clobber() {
        let path = temp_wal("clobber");
        WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
        assert!(matches!(
            WalWriter::create(&path, header(), SyncPolicy::EveryCommit),
            Err(WalError::Io(_))
        ));
    }

    #[test]
    fn truncated_frame_is_dropped_and_tail_truncated() {
        let path = temp_wal("torn-frame");
        let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
        for i in 0..4 {
            w.append(sample(i)).unwrap();
            w.commit_sync().unwrap();
        }
        drop(w);
        // Tear the last frame in half.
        let bytes = std::fs::read(&path).unwrap();
        let torn_len = bytes.len() - (FRAME_LEN / 2) as usize;
        std::fs::write(&path, &bytes[..torn_len]).unwrap();

        let (w, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
        assert_eq!(report.records.len(), 3, "torn record must be dropped");
        assert_eq!(
            report.truncated_bytes,
            FRAME_LEN - FRAME_LEN / 2,
            "the torn half-frame is the truncated tail"
        );
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            HEADER_LEN + 3 * FRAME_LEN,
            "the tail must be truncated on disk, not just skipped"
        );
        assert_eq!(w.next_lsn(), 4, "the torn record's LSN is reused");
    }

    #[test]
    fn bad_crc_ends_the_valid_prefix() {
        let path = temp_wal("bad-crc");
        let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
        for i in 0..5 {
            w.append(sample(i)).unwrap();
        }
        w.sync_now().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of record 3 (0-indexed 2).
        let off = (HEADER_LEN + 2 * FRAME_LEN + 14) as usize;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
        assert_eq!(report.records.len(), 2, "records after the flip are gone");
        assert_eq!(report.truncated_bytes, 3 * FRAME_LEN);
    }

    #[test]
    fn garbage_tail_is_truncated() {
        let path = temp_wal("garbage");
        let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
        for i in 0..3 {
            w.append(sample(i)).unwrap();
        }
        w.sync_now().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 173]);
        std::fs::write(&path, &bytes).unwrap();

        let (_, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.truncated_bytes, 173);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            HEADER_LEN + 3 * FRAME_LEN
        );
    }

    #[test]
    fn zero_length_and_short_files_are_format_errors() {
        for len in [0usize, 1, 4, HEADER_LEN as usize - 1] {
            let bytes = vec![0u8; len];
            assert!(matches!(parse_bytes(&bytes), Err(WalError::Format(_))));
        }
        let path = temp_wal("zero");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            WalWriter::open(&path, SyncPolicy::EveryCommit),
            Err(WalError::Format(_))
        ));
    }

    #[test]
    fn header_corruption_is_rejected() {
        let mut h = header().encode().to_vec();
        for i in 0..h.len() {
            let mut bad = h.clone();
            bad[i] ^= 0x20;
            assert!(
                parse_bytes(&bad).is_err(),
                "header flip at offset {i} went undetected"
            );
        }
        // Version bump specifically must be refused, not truncated-around.
        h[4] = 2;
        let crc = crc32(&h[0..32]);
        h[32..36].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(parse_bytes(&h), Err(WalError::Format(_))));
    }

    #[test]
    fn adversarial_bytes_never_panic() {
        // Seeded byte soup (splitmix64, mirroring the binio/snapshot
        // hardening tests): parse must return, never panic or OOM.
        let mut state = 0x57A1_F00Du64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^ (x >> 31)
        };
        for len in [0usize, 7, 36, 64, 300, 4096] {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = parse_bytes(&bytes);
        }
        // Valid header followed by soup: must yield the header and an
        // empty (or prefix-only) record list, never a panic.
        let mut lying = header().encode().to_vec();
        lying.extend((0..500).map(|_| next() as u8));
        let (h, _, valid) = parse_bytes(&lying).unwrap();
        assert_eq!(h, header());
        assert!(valid >= HEADER_LEN);
    }

    #[test]
    fn stale_lsn_residue_after_rewind_is_ignored() {
        // A frame whose LSN does not continue the sequence (stale residue
        // from a longer previous life of the log) ends the valid prefix.
        let mut bytes = header().encode().to_vec();
        let frame = |lsn: u64| {
            let mut f = vec![0u8; FRAME_LEN as usize];
            f[0..4].copy_from_slice(&PAYLOAD_LEN.to_le_bytes());
            f[4..12].copy_from_slice(&lsn.to_le_bytes());
            f[12] = 3; // AddVertex
            let crc = crc32(&f[..FRAME_LEN as usize - 4]);
            f[FRAME_LEN as usize - 4..].copy_from_slice(&crc.to_le_bytes());
            f
        };
        bytes.extend(frame(1));
        bytes.extend(frame(2));
        bytes.extend(frame(7)); // stale: valid CRC, wrong LSN
        let (_, records, valid) = parse_bytes(&bytes).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(valid, HEADER_LEN + 2 * FRAME_LEN);
    }

    #[test]
    fn group_commit_lags_durable_len_until_sync() {
        let path = temp_wal("group");
        let mut w =
            WalWriter::create(&path, header(), SyncPolicy::Group { max_pending: 4 }).unwrap();
        let durable = w.durable_len_handle();
        for i in 0..3 {
            w.append(sample(i)).unwrap();
            w.commit_sync().unwrap();
        }
        assert_eq!(
            durable.load(Ordering::Relaxed),
            HEADER_LEN,
            "3 < max_pending: nothing synced yet"
        );
        w.append(sample(3)).unwrap();
        w.commit_sync().unwrap(); // 4th append triggers the group sync
        assert_eq!(durable.load(Ordering::Relaxed), HEADER_LEN + 4 * FRAME_LEN);
    }

    #[test]
    fn checkpoint_truncation_rewinds_to_header() {
        let path = temp_wal("ckpt");
        let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
        for i in 0..5 {
            w.append(sample(i)).unwrap();
            w.commit_sync().unwrap();
        }
        w.truncate_for_checkpoint().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), HEADER_LEN);
        assert_eq!(w.next_lsn(), 6, "LSNs keep counting across truncation");
        // Appends after truncation land right after the header.
        w.append(sample(9)).unwrap();
        w.commit_sync().unwrap();
        drop(w);
        let (_, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].lsn, 6);
    }

    #[cfg(feature = "faults")]
    mod fault_tests {
        use super::*;
        use std::sync::Arc as StdArc;
        use tufast_txn::{is_injected_crash, FaultPlan, FaultSpec};

        #[test]
        fn torn_append_leaves_a_recoverable_prefix() {
            let path = temp_wal("fault-torn");
            let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
            let plan = FaultPlan::new(FaultSpec {
                torn_wal_at_append: 3,
                ..FaultSpec::default()
            });
            w.set_fault_handle(FaultHandle::attached(Some(StdArc::clone(&plan)), 0));
            w.append(sample(0)).unwrap();
            w.commit_sync().unwrap();
            w.append(sample(1)).unwrap();
            w.commit_sync().unwrap();
            let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = w.append(sample(2));
            }));
            assert!(is_injected_crash(
                died.expect_err("torn append dies").as_ref()
            ));
            drop(w);
            // The file holds 2 full frames plus a torn half-frame.
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                HEADER_LEN + 2 * FRAME_LEN + FRAME_LEN / 2
            );
            let (_, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
            assert_eq!(report.records.len(), 2);
            assert_eq!(report.truncated_bytes, FRAME_LEN / 2);
        }

        #[test]
        fn lost_fsync_keeps_durable_len_behind() {
            let path = temp_wal("fault-lostsync");
            let mut w = WalWriter::create(&path, header(), SyncPolicy::EveryCommit).unwrap();
            let plan = FaultPlan::new(FaultSpec {
                lost_fsync_permille: 1000,
                ..FaultSpec::default()
            });
            w.set_fault_handle(FaultHandle::attached(Some(StdArc::clone(&plan)), 0));
            let durable = w.durable_len_handle();
            w.append(sample(0)).unwrap();
            w.commit_sync().unwrap(); // "succeeds" but the sync was dropped
            assert_eq!(w.written_len(), HEADER_LEN + FRAME_LEN);
            assert_eq!(
                durable.load(Ordering::Relaxed),
                HEADER_LEN,
                "the lying fsync must not advance the durable length"
            );
            // Simulated power cut: truncate to what was really durable.
            drop(w);
            let keep = durable.load(Ordering::Relaxed);
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(keep).unwrap();
            drop(f);
            let (_, report) = WalWriter::open(&path, SyncPolicy::EveryCommit).unwrap();
            assert!(report.records.is_empty(), "the acked commit was lost");
        }
    }
}
