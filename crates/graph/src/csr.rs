//! Compressed-sparse-row adjacency storage.

/// Vertex identifier. `u32` bounds graphs at ~4.2 B vertices, far beyond the
/// laptop-scale stand-ins this reproduction runs on, while halving the
/// memory traffic of the hot adjacency arrays versus `usize`.
pub type VertexId = u32;

/// One direction of adjacency in CSR form: `targets[offsets[v]..offsets[v+1]]`
/// are the neighbours of `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Box<[u64]>,
    targets: Box<[VertexId]>,
}

impl Csr {
    pub(crate) fn new(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Csr {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbours of `v` (sorted ascending, duplicates removed by the builder
    /// unless multi-edges were requested).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Index range of `v`'s edges in the target array — the edge ids, used
    /// to look up per-edge weights.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }
}

/// A directed graph in CSR form, with optional reverse adjacency and
/// optional `u32` edge weights (aligned with the out-edge array).
///
/// Equality is structural over every array — the durability matrix in
/// `tufast-check` relies on it to prove recovery is *bitwise* exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    out: Csr,
    rev: Option<Csr>,
    weights: Option<Box<[u32]>>,
}

impl Graph {
    pub(crate) fn from_parts(out: Csr, rev: Option<Csr>, weights: Option<Vec<u32>>) -> Self {
        if let Some(w) = &weights {
            assert_eq!(w.len() as u64, out.num_edges(), "one weight per out-edge");
        }
        Graph {
            out,
            rev,
            weights: weights.map(Vec::into_boxed_slice),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.out.num_edges()
    }

    /// Average out-degree (the paper's Table II `|E|/|V|` column).
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_vertices().max(1) as f64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// Edge-id range of `v`'s out-edges (for weight lookups).
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.out.edge_range(v)
    }

    /// Out-neighbours of `v` zipped with their weights.
    ///
    /// # Panics
    /// If the graph has no weights.
    #[inline]
    pub fn weighted_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let range = self.out.edge_range(v);
        let w = self.weights.as_ref().expect("graph has no edge weights");
        self.out
            .neighbors(v)
            .iter()
            .copied()
            .zip(w[range].iter().copied())
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    /// If the graph was built without in-edges.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.rev().degree(v)
    }

    /// In-neighbours of `v`.
    ///
    /// # Panics
    /// If the graph was built without in-edges.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.rev().neighbors(v)
    }

    /// The reverse adjacency, if materialised.
    #[inline]
    pub fn reverse(&self) -> Option<&Csr> {
        self.rev.as_ref()
    }

    /// The forward adjacency.
    #[inline]
    pub fn forward(&self) -> &Csr {
        &self.out
    }

    /// Whether edge weights are present.
    #[inline]
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// Per-edge weights aligned with the out-edge array, if present.
    #[inline]
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Iterate all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterate all directed edges as `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Maximum out-degree and the vertex attaining it.
    pub fn max_degree(&self) -> (VertexId, usize) {
        self.vertices()
            .map(|v| (v, self.degree(v)))
            .max_by_key(|&(_, d)| d)
            .unwrap_or((0, 0))
    }

    fn rev(&self) -> &Csr {
        self.rev
            .as_ref()
            .expect("graph built without in-edges; use GraphBuilder::with_in_edges")
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.with_in_edges().build()
    }

    #[test]
    fn csr_basics() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_adjacency() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[u32]);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn edges_iterator_enumerates_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn max_degree_finds_hub() {
        let mut b = GraphBuilder::new(5);
        for u in 1..5 {
            b.add_edge(0, u);
        }
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.max_degree(), (0, 4));
    }

    #[test]
    fn weighted_neighbors_align() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 10);
        b.add_weighted_edge(0, 2, 20);
        let g = b.build();
        let wn: Vec<_> = g.weighted_neighbors(0).collect();
        assert_eq!(wn, vec![(1, 10), (2, 20)]);
    }

    #[test]
    #[should_panic(expected = "no edge weights")]
    fn weighted_access_without_weights_panics() {
        let g = diamond();
        let _ = g.weighted_neighbors(0).count();
    }
}
