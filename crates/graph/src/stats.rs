//! Degree statistics and histograms (paper Figure 5 / Table II).

use crate::csr::Graph;

/// Summary degree statistics for a graph — the columns of the paper's
/// Table II plus the skew indicators its analysis leans on.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: u64,
    /// `|E| / |V|`.
    pub avg_degree: f64,
    /// Largest out-degree.
    pub max_degree: usize,
    /// Median out-degree.
    pub median_degree: usize,
    /// 99th-percentile out-degree.
    pub p99_degree: usize,
    /// Fraction of vertices whose *transaction footprint* (degree + 1
    /// vertices, two words each) fits the default 32 KB HTM capacity —
    /// the population TuFast can route to H mode.
    pub htm_fit_fraction: f64,
}

/// Compute [`DegreeStats`] for `g`, using `capacity_words` as the HTM
/// footprint bound (4096 words for the default geometry).
pub fn degree_stats(g: &Graph, capacity_words: usize) -> DegreeStats {
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let n = degrees.len();
    let max_degree = degrees.last().copied().unwrap_or(0);
    let fit = degrees
        .iter()
        .take_while(|&&d| footprint_words(d) <= capacity_words)
        .count();
    DegreeStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree,
        median_degree: degrees.get(n / 2).copied().unwrap_or(0),
        p99_degree: degrees.get((n * 99) / 100).copied().unwrap_or(0),
        htm_fit_fraction: if n == 0 { 0.0 } else { fit as f64 / n as f64 },
    }
}

/// Words a degree-`d` vertex transaction touches in the paper's
/// micro-benchmark model: the vertex and each neighbour contribute a data
/// word and a lock word.
#[inline]
pub fn footprint_words(degree: usize) -> usize {
    2 * (degree + 1)
}

/// One point of a degree histogram: `count` vertices have out-degree
/// `degree`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreePoint {
    /// The out-degree.
    pub degree: usize,
    /// How many vertices have it.
    pub count: usize,
}

/// Exact degree → count histogram, sorted by degree ascending, zero counts
/// omitted. Plotted on log-log axes this is the paper's Figure 5.
pub fn degree_histogram(g: &Graph) -> Vec<DegreePoint> {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for v in g.vertices() {
        *counts.entry(g.degree(v)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(degree, count)| DegreePoint { degree, count })
        .collect()
}

/// Least-squares slope of `log10(count)` against `log10(degree)` over the
/// histogram (degree ≥ 1). A power-law graph gives a clearly negative
/// slope (the straight line of Figure 5); an even-degree graph does not.
pub fn log_log_slope(hist: &[DegreePoint]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .filter(|p| p.degree >= 1 && p.count >= 1)
        .map(|p| ((p.degree as f64).log10(), (p.count as f64).log10()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_on_star() {
        let g = gen::star(101);
        let s = degree_stats(&g, 4096);
        assert_eq!(s.num_vertices, 101);
        assert_eq!(s.max_degree, 100);
        assert_eq!(s.median_degree, 1);
        // Only the hub exceeds nothing here (footprint 202 < 4096): all fit.
        assert!((s.htm_fit_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_fraction_excludes_giant_hub() {
        let g = gen::star(10_000);
        let s = degree_stats(&g, 4096);
        // Hub footprint = 2*(9999+1) words > 4096; leaves fit.
        assert!(s.htm_fit_fraction < 1.0);
        assert!(s.htm_fit_fraction > 0.999);
    }

    #[test]
    fn histogram_counts_every_vertex() {
        let g = gen::rmat(8, 8, 5);
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|p| p.count).sum();
        assert_eq!(total, g.num_vertices());
        // Sorted ascending, unique degrees.
        assert!(hist.windows(2).all(|w| w[0].degree < w[1].degree));
    }

    #[test]
    fn power_law_graph_has_negative_slope() {
        let g = gen::rmat(12, 16, 5);
        let slope = log_log_slope(&degree_histogram(&g)).unwrap();
        assert!(slope < -0.5, "R-MAT slope {slope} not power-law-like");
    }

    #[test]
    fn even_graph_is_not_power_law() {
        let er = gen::erdos_renyi(5000, 50_000, 2);
        let rm = gen::rmat(12, 10, 2);
        let s_er = log_log_slope(&degree_histogram(&er)).unwrap();
        let s_rm = log_log_slope(&degree_histogram(&rm)).unwrap();
        // The ER histogram is bell-shaped; its fitted slope is much less
        // steep than the R-MAT power law.
        assert!(s_rm < s_er, "rmat {s_rm} vs er {s_er}");
    }

    #[test]
    fn footprint_model() {
        assert_eq!(footprint_words(0), 2);
        assert_eq!(footprint_words(2047), 4096);
        assert!(footprint_words(2048) > 4096);
    }
}
