//! [`DurableGraph`]: crash-durable transactional graph mutations.
//!
//! Ties the three pieces together (DESIGN.md §13):
//!
//! * the delta overlay ([`MutableGraph`]) holding in-memory effects,
//! * the write-ahead log ([`crate::wal`]) every mutation commits to
//!   *before* its effects become visible,
//! * TFSN snapshots ([`crate::snapshot`]) of the overlay, written through
//!   the existing two-generation store so the WAL can be truncated at
//!   checkpoints.
//!
//! ## Commit protocol
//!
//! A single commit lock (the `Mutex<WalWriter>`) spans
//! `append → fsync policy → transactional apply`, so **log order is
//! commit order**: the WAL always holds a frame for every mutation whose
//! effects are visible, and recovery replays a *prefix-closed* history.
//! Mutators serialize against each other on the lock; analytics
//! transactions run concurrently through the schedulers as usual and
//! serialize against the mutation's *transactional* apply (which is why
//! mutations still execute as transaction bodies, observable by the DSG
//! oracle, rather than as raw stores).
//!
//! ## Recovery invariant
//!
//! `open` = load `base.tfg` → carve the overlay from the WAL header's
//! geometry → restore the newest valid snapshot (or zero-init) → replay
//! every WAL record with `lsn > snapshot epoch`, in LSN order. For any
//! crash point, the recovered graph materializes bitwise-identically to
//! applying the durable prefix of the log to the base — the property the
//! durability matrix in `tufast-check` proves fault by fault.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use tufast_htm::MemoryLayout;
use tufast_txn::{TxnSystem, TxnWorker};

use crate::binio;
use crate::mutable::{MutableGraph, MutationOutcome, OverlayConfig};
use crate::snapshot::{Snapshot, SnapshotError, SnapshotStore};
use crate::wal::{Mutation, SyncPolicy, WalError, WalHeader, WalOpenReport, WalWriter};
use crate::{Graph, VertexId};

/// File name of the immutable CSR base inside a durable directory.
pub const BASE_FILE: &str = "base.tfg";
/// File name of the write-ahead log.
pub const WAL_FILE: &str = "graph.wal";
/// Snapshot-store prefix (and the snapshot's algorithm tag).
pub const SNAPSHOT_TAG: &str = "mutgraph";

/// Pseudo worker id the durable commit path's fault probes report under.
const WAL_WORKER: u32 = u32::MAX - 1;

/// Errors from durable-graph I/O and recovery.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Write-ahead-log failure.
    Wal(WalError),
    /// Snapshot-store failure.
    Snapshot(SnapshotError),
    /// Base-graph cache failure.
    Base(binio::BinError),
    /// Structural inconsistency between log, snapshot, and geometry.
    Corrupt(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "I/O error: {e}"),
            DurableError::Wal(e) => write!(f, "{e}"),
            DurableError::Snapshot(e) => write!(f, "{e}"),
            DurableError::Base(e) => write!(f, "base graph: {e}"),
            DurableError::Corrupt(m) => write!(f, "corrupt durable graph: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

impl From<binio::BinError> for DurableError {
    fn from(e: binio::BinError) -> Self {
        DurableError::Base(e)
    }
}

/// Initialise a durable-graph directory: persist `base` as `base.tfg` and
/// create an empty WAL whose header carries the (normalised) overlay
/// geometry. Fails if the directory already holds a base or log.
pub fn init_dir(
    dir: &Path,
    base: &Graph,
    capacity: usize,
    config: OverlayConfig,
) -> Result<(), DurableError> {
    assert!(
        capacity >= base.num_vertices() && capacity > 0,
        "capacity must cover the base vertex count"
    );
    std::fs::create_dir_all(dir)?;
    let base_path = dir.join(BASE_FILE);
    if base_path.exists() {
        return Err(DurableError::Corrupt(format!(
            "{} already exists",
            base_path.display()
        )));
    }
    binio::save(base, &base_path)?;
    // Normalise exactly like MutableGraph::carve, so reopening from the
    // header reproduces the same region geometry word for word.
    let stripes = config.stripes.clamp(1, capacity as u64);
    let per_stripe = config.slot_cap / stripes;
    let header = WalHeader {
        capacity: capacity as u64,
        slot_cap: per_stripe * stripes,
        stripes,
    };
    WalWriter::create(&dir.join(WAL_FILE), header, SyncPolicy::EveryCommit)?;
    Ok(())
}

/// What recovery found and did. Returned by [`DurableOpen::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch (= LSN high-water) of the restored snapshot, if one validated.
    pub snapshot_epoch: Option<u64>,
    /// 1 when a newer-but-corrupt snapshot generation was skipped.
    pub snapshot_fallbacks: u64,
    /// Valid records found in the log at open.
    pub wal_records: usize,
    /// Records actually replayed (`lsn > snapshot epoch`).
    pub replayed: usize,
    /// Torn/garbage tail bytes truncated from the log.
    pub wal_truncated_bytes: u64,
}

/// First phase of opening a durable graph: loads the base and the log,
/// truncates any torn WAL tail, and carves the overlay into the caller's
/// layout. The caller then carves its own analytics regions, builds the
/// `TxnSystem`, and calls [`DurableOpen::finish`] to restore + replay.
pub struct DurableOpen {
    dir: PathBuf,
    mutable: MutableGraph,
    writer: WalWriter,
    report: WalOpenReport,
}

impl DurableOpen {
    /// Load `dir` (previously initialised by [`init_dir`]) and carve the
    /// overlay regions into `layout`.
    pub fn begin(
        dir: &Path,
        policy: SyncPolicy,
        layout: &mut MemoryLayout,
    ) -> Result<DurableOpen, DurableError> {
        let base = binio::load(&dir.join(BASE_FILE))?;
        let (writer, report) = WalWriter::open(&dir.join(WAL_FILE), policy)?;
        let header = report.header;
        let capacity = usize::try_from(header.capacity)
            .map_err(|_| DurableError::Corrupt("absurd capacity in WAL header".into()))?;
        if capacity < base.num_vertices() || capacity == 0 {
            return Err(DurableError::Corrupt(format!(
                "WAL header capacity {capacity} below base vertex count {}",
                base.num_vertices()
            )));
        }
        let mutable = MutableGraph::carve(
            base,
            capacity,
            OverlayConfig {
                slot_cap: header.slot_cap,
                stripes: header.stripes,
            },
            layout,
        );
        Ok(DurableOpen {
            dir: dir.to_path_buf(),
            mutable,
            writer,
            report,
        })
    }

    /// Vertex capacity to build the `TxnSystem` with (every vertex tag the
    /// overlay can ever use needs a lock word).
    pub fn capacity(&self) -> usize {
        self.mutable.capacity()
    }

    /// Second phase: restore the newest valid snapshot (or zero-init),
    /// replay the WAL suffix, and return the live graph plus what
    /// recovery found. `system` must have been built from the same layout
    /// [`DurableOpen::begin`] carved into.
    pub fn finish(
        self,
        system: &Arc<TxnSystem>,
    ) -> Result<(DurableGraph, RecoveryReport), DurableError> {
        let DurableOpen {
            dir,
            mutable,
            mut writer,
            report,
        } = self;
        let store = SnapshotStore::open(&dir, SNAPSHOT_TAG)?;
        let mem = system.mem();

        let (snapshot_epoch, snapshot_fallbacks) = match store.load_latest() {
            Ok(loaded) if loaded.snapshot.algo == SNAPSHOT_TAG => {
                match mutable.restore_sections(mem, &loaded.snapshot) {
                    Ok(()) => (Some(loaded.snapshot.epoch), loaded.fallbacks),
                    Err(msg) => {
                        return Err(DurableError::Corrupt(format!(
                            "snapshot epoch {} does not match the carved geometry: {msg}",
                            loaded.snapshot.epoch
                        )))
                    }
                }
            }
            Ok(loaded) => {
                return Err(DurableError::Corrupt(format!(
                    "snapshot tagged {:?}, expected {SNAPSHOT_TAG:?}",
                    loaded.snapshot.algo
                )))
            }
            Err(SnapshotError::NoValidSnapshot) => {
                mutable.init(mem);
                (None, 0)
            }
            Err(e) => return Err(e.into()),
        };

        let floor = snapshot_epoch.unwrap_or(0);
        let mut replayed = 0usize;
        for record in &report.records {
            if record.lsn <= floor {
                continue; // already folded into the snapshot
            }
            let outcome = mutable.apply_direct(mem, record.mutation);
            if outcome != MutationOutcome::Applied {
                return Err(DurableError::Corrupt(format!(
                    "replay of LSN {} reported {outcome:?} — every logged \
                     record was pre-validated at commit time",
                    record.lsn
                )));
            }
            replayed += 1;
        }
        let last_lsn = report.records.last().map_or(0, |r| r.lsn).max(floor);
        writer.set_next_lsn(last_lsn + 1);
        writer.set_fault_handle(system.fault_handle(WAL_WORKER));

        let recovery = RecoveryReport {
            snapshot_epoch,
            snapshot_fallbacks,
            wal_records: report.records.len(),
            replayed,
            wal_truncated_bytes: report.truncated_bytes,
        };
        Ok((
            DurableGraph {
                system: Arc::clone(system),
                mutable,
                store,
                wal: Mutex::new(writer),
            },
            recovery,
        ))
    }
}

/// Result of one [`DurableGraph::checkpoint`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableCheckpoint {
    /// LSN high-water the snapshot covers (its TFSN epoch).
    pub epoch: u64,
    /// Generation slot path the snapshot landed in.
    pub path: PathBuf,
}

/// A crash-durable [`MutableGraph`]: every mutation is WAL-logged before
/// its effects become visible, and checkpoints fold the overlay into a
/// TFSN snapshot so the log can be truncated. See the module docs for the
/// commit protocol and recovery invariant.
pub struct DurableGraph {
    system: Arc<TxnSystem>,
    mutable: MutableGraph,
    store: SnapshotStore,
    wal: Mutex<WalWriter>,
}

impl DurableGraph {
    /// The overlay graph (for transactional reads, materialisation
    /// helpers, and history tagging).
    pub fn mutable(&self) -> &MutableGraph {
        &self.mutable
    }

    /// The transaction system mutations execute through.
    pub fn system(&self) -> &Arc<TxnSystem> {
        &self.system
    }

    /// An injected crash unwinding through a commit poisons the lock; the
    /// "process" is dead at that point and the harness only reopens from
    /// disk, so recovering the guard (not the state) is sound.
    fn lock_wal(&self) -> MutexGuard<'_, WalWriter> {
        self.wal.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Durably add the edge `src → dst` as one transaction on `worker`.
    pub fn add_edge<W: TxnWorker>(
        &self,
        worker: &mut W,
        src: VertexId,
        dst: VertexId,
        weight: u32,
    ) -> Result<MutationOutcome, DurableError> {
        self.commit_mutation(worker, Mutation::AddEdge { src, dst, weight })
            .map(|(outcome, _)| outcome)
    }

    /// Durably remove the edge `src → dst` as one transaction on `worker`.
    pub fn remove_edge<W: TxnWorker>(
        &self,
        worker: &mut W,
        src: VertexId,
        dst: VertexId,
    ) -> Result<MutationOutcome, DurableError> {
        self.commit_mutation(worker, Mutation::RemoveEdge { src, dst })
            .map(|(outcome, _)| outcome)
    }

    /// Durably grow the vertex set by one; returns the new vertex id, or
    /// `None` at capacity.
    pub fn add_vertex<W: TxnWorker>(
        &self,
        worker: &mut W,
    ) -> Result<Option<VertexId>, DurableError> {
        self.commit_mutation(worker, Mutation::AddVertex)
            .map(|(_, id)| id)
    }

    /// The durable commit protocol: under the commit lock, pre-validate →
    /// append → fsync per policy → crash probe → transactional apply.
    /// Rejected mutations ([`MutationOutcome::OutOfBounds`] /
    /// [`MutationOutcome::OverlayFull`]) are *not* logged.
    fn commit_mutation<W: TxnWorker>(
        &self,
        worker: &mut W,
        mutation: Mutation,
    ) -> Result<(MutationOutcome, Option<VertexId>), DurableError> {
        let mut wal = self.lock_wal();
        // Pre-validate with plain loads: mutators are serialized by the
        // lock and analytics never write overlay words, so these reads
        // are stable until the apply below.
        let precheck = self.precheck(mutation);
        if precheck != MutationOutcome::Applied {
            return Ok((precheck, None));
        }
        wal.append(mutation)?;
        wal.commit_sync()?;
        wal.commit_crash_point();
        let (outcome, new_id) = self.mutable_apply(worker, mutation);
        debug_assert_eq!(
            outcome,
            MutationOutcome::Applied,
            "pre-validated mutation must apply"
        );
        Ok((outcome, new_id))
    }

    fn precheck(&self, mutation: Mutation) -> MutationOutcome {
        let mem = self.system.mem();
        let live = self.mutable.num_vertices(mem) as u64;
        match mutation {
            Mutation::AddEdge { src, dst, .. } | Mutation::RemoveEdge { src, dst } => {
                if u64::from(src) >= live || u64::from(dst) >= live {
                    return MutationOutcome::OutOfBounds;
                }
                // A full stripe would make the transactional apply bail
                // after the frame is already durable — reject first.
                if self.mutable.stripe_is_full(mem, src) {
                    return MutationOutcome::OverlayFull;
                }
                MutationOutcome::Applied
            }
            Mutation::AddVertex => {
                if live >= self.mutable.capacity() as u64 {
                    MutationOutcome::OverlayFull
                } else {
                    MutationOutcome::Applied
                }
            }
        }
    }

    fn mutable_apply<W: TxnWorker>(
        &self,
        worker: &mut W,
        mutation: Mutation,
    ) -> (MutationOutcome, Option<VertexId>) {
        match mutation {
            Mutation::AddEdge { src, dst, weight } => {
                (self.mutable.add_edge(worker, src, dst, weight), None)
            }
            Mutation::RemoveEdge { src, dst } => (self.mutable.remove_edge(worker, src, dst), None),
            Mutation::AddVertex => match self.mutable.add_vertex(worker) {
                Some(id) => (MutationOutcome::Applied, Some(id)),
                None => (MutationOutcome::OverlayFull, None),
            },
        }
    }

    /// Force the log durable now (drains any group-commit batch).
    pub fn sync(&self) -> Result<(), DurableError> {
        Ok(self.lock_wal().sync_now()?)
    }

    /// Checkpoint: fold the overlay into a TFSN snapshot (epoch = LSN
    /// high-water) through the two-generation store, then truncate the
    /// log back to its header. Runs under the commit lock, so the
    /// captured state is transaction-consistent with the log.
    pub fn checkpoint(&self) -> Result<DurableCheckpoint, DurableError> {
        let mut wal = self.lock_wal();
        let mem = self.system.mem();
        let epoch = wal.next_lsn() - 1;
        let snap = Snapshot {
            algo: SNAPSHOT_TAG.to_string(),
            epoch,
            sections: self.mutable.capture_sections(mem),
        };
        let path = self.store.write(&snap)?;
        wal.truncate_for_checkpoint()?;
        Ok(DurableCheckpoint { epoch, path })
    }

    /// Materialise the committed graph (holds the commit lock, so no
    /// mutation is mid-apply).
    pub fn materialize(&self) -> Graph {
        let _wal = self.lock_wal();
        self.mutable.materialize(self.system.mem())
    }

    /// Highest LSN committed so far.
    pub fn last_lsn(&self) -> u64 {
        self.lock_wal().next_lsn() - 1
    }

    /// Shared really-durable log length (see
    /// [`WalWriter::durable_len_handle`]) — the durability harness clones
    /// this to simulate power cuts.
    pub fn wal_durable_len(&self) -> Arc<std::sync::atomic::AtomicU64> {
        self.lock_wal().durable_len_handle()
    }
}

impl std::fmt::Debug for DurableGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableGraph")
            .field("mutable", &self.mutable)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tufast_txn::{GraphScheduler, SystemConfig, TwoPhaseLocking};

    use crate::GraphBuilder;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tufast-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn line_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(i as VertexId, i as VertexId + 1);
        }
        b.build()
    }

    fn small_cfg() -> OverlayConfig {
        OverlayConfig {
            slot_cap: 64,
            stripes: 4,
        }
    }

    fn open(dir: &Path, policy: SyncPolicy) -> (DurableGraph, RecoveryReport) {
        let mut layout = MemoryLayout::new();
        let prep = DurableOpen::begin(dir, policy, &mut layout).unwrap();
        let system = TxnSystem::build(prep.capacity(), layout, SystemConfig::default());
        prep.finish(&system).unwrap()
    }

    #[test]
    fn fresh_open_then_mutate_then_reopen_replays_the_log() {
        let dir = temp_dir("reopen");
        init_dir(&dir, &line_graph(4), 8, small_cfg()).unwrap();

        let (dg, recovery) = open(&dir, SyncPolicy::EveryCommit);
        assert_eq!(recovery.snapshot_epoch, None);
        assert_eq!(recovery.wal_records, 0);
        let sched = TwoPhaseLocking::new(Arc::clone(dg.system()));
        let mut w = sched.worker();
        assert_eq!(
            dg.add_edge(&mut w, 3, 0, 0).unwrap(),
            MutationOutcome::Applied
        );
        assert_eq!(
            dg.remove_edge(&mut w, 0, 1).unwrap(),
            MutationOutcome::Applied
        );
        assert_eq!(dg.add_vertex(&mut w).unwrap(), Some(4));
        assert_eq!(
            dg.add_edge(&mut w, 4, 2, 0).unwrap(),
            MutationOutcome::Applied
        );
        assert_eq!(dg.last_lsn(), 4);
        let live = dg.materialize();
        drop(dg);

        let (dg2, recovery) = open(&dir, SyncPolicy::EveryCommit);
        assert_eq!(recovery.wal_records, 4);
        assert_eq!(recovery.replayed, 4);
        assert_eq!(recovery.snapshot_epoch, None);
        assert_eq!(dg2.materialize(), live, "recovery must be bitwise exact");
        assert_eq!(dg2.last_lsn(), 4, "LSNs continue where they left off");
    }

    #[test]
    fn checkpoint_truncates_log_and_recovery_uses_the_snapshot() {
        let dir = temp_dir("ckpt");
        init_dir(&dir, &line_graph(4), 8, small_cfg()).unwrap();
        let (dg, _) = open(&dir, SyncPolicy::EveryCommit);
        let sched = TwoPhaseLocking::new(Arc::clone(dg.system()));
        let mut w = sched.worker();
        dg.add_edge(&mut w, 2, 0, 0).unwrap();
        dg.add_edge(&mut w, 3, 1, 0).unwrap();
        let ckpt = dg.checkpoint().unwrap();
        assert_eq!(ckpt.epoch, 2);
        // Post-checkpoint mutations land in the (now empty) log.
        dg.remove_edge(&mut w, 0, 1).unwrap();
        let live = dg.materialize();
        drop(dg);

        let (dg2, recovery) = open(&dir, SyncPolicy::EveryCommit);
        assert_eq!(recovery.snapshot_epoch, Some(2));
        assert_eq!(recovery.wal_records, 1);
        assert_eq!(recovery.replayed, 1);
        assert_eq!(dg2.materialize(), live);
    }

    #[test]
    fn rejected_mutations_are_not_logged() {
        let dir = temp_dir("reject");
        init_dir(&dir, &line_graph(3), 3, small_cfg()).unwrap();
        let (dg, _) = open(&dir, SyncPolicy::EveryCommit);
        let sched = TwoPhaseLocking::new(Arc::clone(dg.system()));
        let mut w = sched.worker();
        assert_eq!(
            dg.add_edge(&mut w, 0, 9, 0).unwrap(),
            MutationOutcome::OutOfBounds
        );
        assert_eq!(dg.add_vertex(&mut w).unwrap(), None, "at capacity");
        assert_eq!(dg.last_lsn(), 0, "nothing may reach the log");
    }

    #[test]
    fn init_dir_refuses_to_clobber() {
        let dir = temp_dir("clobber");
        init_dir(&dir, &line_graph(2), 4, small_cfg()).unwrap();
        assert!(matches!(
            init_dir(&dir, &line_graph(2), 4, small_cfg()),
            Err(DurableError::Corrupt(_))
        ));
    }

    #[test]
    fn torn_newer_snapshot_falls_back_to_older_generation_plus_replay() {
        // Regression for the epoch-before-CRC ordering bug. Model a crash
        // *between* snapshot write and log truncation (the checkpoint's
        // only non-atomic seam): the newer generation lands on disk but
        // the log still covers everything past the *older* snapshot. Then
        // tear the newer file. Its epoch bytes still read fine, so a
        // store that trusted the epoch before validating the whole-file
        // CRC would select it and lose the tail. Recovery must instead
        // fall back to the older generation and replay the log gap.
        let dir = temp_dir("torn-newer");
        init_dir(&dir, &line_graph(4), 8, small_cfg()).unwrap();
        let (dg, _) = open(&dir, SyncPolicy::EveryCommit);
        let sched = TwoPhaseLocking::new(Arc::clone(dg.system()));
        let mut w = sched.worker();
        dg.add_edge(&mut w, 2, 0, 0).unwrap(); // LSN 1
        dg.checkpoint().unwrap(); // epoch 1 → gen0, log truncated
        dg.add_edge(&mut w, 3, 0, 0).unwrap(); // LSN 2, in the log
        dg.add_edge(&mut w, 3, 1, 0).unwrap(); // LSN 3, in the log
        let live = dg.materialize();
        // Crash mid-checkpoint: the epoch-3 snapshot is written (gen1)
        // but truncation never runs, so the log keeps LSNs 2 and 3.
        let store = SnapshotStore::open(&dir, SNAPSHOT_TAG).unwrap();
        let snap = Snapshot {
            algo: SNAPSHOT_TAG.to_string(),
            epoch: 3,
            sections: dg.mutable().capture_sections(dg.system().mem()),
        };
        let newer = store.write(&snap).unwrap();
        drop(dg);
        // Tear the newer generation mid-file: its epoch bytes still read 3.
        let bytes = std::fs::read(&newer).unwrap();
        std::fs::write(&newer, &bytes[..bytes.len() / 2]).unwrap();

        let (dg2, recovery) = open(&dir, SyncPolicy::EveryCommit);
        assert_eq!(
            recovery.snapshot_epoch,
            Some(1),
            "the torn epoch-3 snapshot must not be selected"
        );
        assert_eq!(recovery.snapshot_fallbacks, 1);
        assert_eq!(recovery.replayed, 2, "LSNs 2 and 3 come from the log");
        assert_eq!(dg2.materialize(), live, "replay covers the gap exactly");
    }
}
