//! Versioned, checksummed algorithm snapshots (TFSN format).
//!
//! Long-running analytics checkpoint their vertex property arrays plus
//! algorithm progress (epoch counter, frontier) at transaction-consistent
//! quiescent points; a crash then costs at most one epoch of work. The
//! format is designed so that *no* on-disk corruption can panic the
//! loader or silently yield bad state:
//!
//! ```text
//! magic "TFSN" | version u32 | epoch u64
//! tag_len u32 | tag bytes                    — algorithm tag
//! section_count u32
//! per section:
//!   name_len u32 | name bytes
//!   word_count u64 | words (u64 LE each)
//!   crc u32                                  — CRC-32 of the words
//! file_crc u32                               — CRC-32 of everything above
//! ```
//!
//! Durability protocol (see DESIGN.md "Checkpointing"):
//!
//! * **Atomic replace** — each snapshot is written to a temp file, synced,
//!   then renamed over its generation slot, so a torn write can never
//!   destroy a previously valid snapshot.
//! * **Two-generation rotation** — [`SnapshotStore`] alternates between
//!   two slots; [`SnapshotStore::load_latest`] picks the valid snapshot
//!   with the highest epoch and falls back to the older generation when
//!   the newer one is corrupt (counted, so recovery can report it).

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Format version written by this build.
const VERSION: u32 = 1;
const MAGIC: &[u8; 4] = b"TFSN";
/// Upper bound on tag/section-name lengths (defensive: a corrupt length
/// field must not drive a huge allocation).
const MAX_NAME_LEN: u32 = 256;
/// Upper bound on the section count.
const MAX_SECTIONS: u32 = 4096;
/// Section payloads are read in bounded chunks so a lying `word_count`
/// fails at end-of-file instead of pre-allocating the claimed size.
const CHUNK_WORDS: usize = 1 << 16;

/// Errors from snapshot I/O.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a TFSN file, or structurally invalid / checksum mismatch.
    Format(String),
    /// No generation of the store holds a valid snapshot.
    NoValidSnapshot,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "I/O error: {e}"),
            SnapshotError::Format(m) => write!(f, "bad TFSN snapshot: {m}"),
            SnapshotError::NoValidSnapshot => write!(f, "no valid snapshot in any generation"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One named array of words in a snapshot (a vertex property region, the
/// frontier encoding, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name, unique within the snapshot.
    pub name: String,
    /// Payload words.
    pub words: Vec<u64>,
}

/// A complete checkpoint: which algorithm, how far it got, and its state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Algorithm tag (must match at restore time).
    pub algo: String,
    /// Epoch counter: how many checkpoints preceded this state.
    pub epoch: u64,
    /// Named state sections.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// The section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

// ---------------------------------------------------------------- CRC-32

/// CRC-32 (IEEE 802.3, reflected) — hand-rolled because the workspace is
/// vendored-only.
fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// Running CRC-32 accumulator.
#[derive(Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let table = crc32_table();
        for &b in bytes {
            self.0 = table[((self.0 ^ u32::from(b)) & 0xFF) as usize] ^ (self.0 >> 8);
        }
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// CRC-32 of `bytes` in one call (used by tests and the writer).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ------------------------------------------------------------- serialize

fn put(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(bytes);
}

/// Serialize `snap` into TFSN bytes.
///
/// Returns a [`SnapshotError::Format`] when a name exceeds the format's
/// length caps (so writer and reader agree on what is representable).
pub fn to_bytes(snap: &Snapshot) -> Result<Vec<u8>, SnapshotError> {
    let check_name = |what: &str, name: &str| -> Result<(), SnapshotError> {
        if name.len() > MAX_NAME_LEN as usize {
            return Err(SnapshotError::Format(format!(
                "{what} {name:?} exceeds {MAX_NAME_LEN} bytes"
            )));
        }
        Ok(())
    };
    check_name("algorithm tag", &snap.algo)?;
    if snap.sections.len() > MAX_SECTIONS as usize {
        return Err(SnapshotError::Format(format!(
            "{} sections exceed the cap of {MAX_SECTIONS}",
            snap.sections.len()
        )));
    }
    let mut buf = Vec::new();
    put(&mut buf, MAGIC);
    put(&mut buf, &VERSION.to_le_bytes());
    put(&mut buf, &snap.epoch.to_le_bytes());
    put(&mut buf, &(snap.algo.len() as u32).to_le_bytes());
    put(&mut buf, snap.algo.as_bytes());
    put(&mut buf, &(snap.sections.len() as u32).to_le_bytes());
    for section in &snap.sections {
        check_name("section name", &section.name)?;
        put(&mut buf, &(section.name.len() as u32).to_le_bytes());
        put(&mut buf, section.name.as_bytes());
        put(&mut buf, &(section.words.len() as u64).to_le_bytes());
        let mut crc = Crc32::new();
        for &w in &section.words {
            let bytes = w.to_le_bytes();
            crc.update(&bytes);
            put(&mut buf, &bytes);
        }
        put(&mut buf, &crc.finish().to_le_bytes());
    }
    let file_crc = crc32(&buf);
    put(&mut buf, &file_crc.to_le_bytes());
    Ok(buf)
}

// ----------------------------------------------------------- deserialize

/// Reader wrapper that feeds every byte into the running file CRC.
struct CrcReader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn exact(&mut self, buf: &mut [u8]) -> Result<(), SnapshotError> {
        self.inner
            .read_exact(buf)
            .map_err(|e| truncation_as_format(e, "unexpected end of snapshot"))?;
        self.crc.update(buf);
        Ok(())
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let mut b = [0u8; 4];
        self.exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut b = [0u8; 8];
        self.exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn name(&mut self, what: &str) -> Result<String, SnapshotError> {
        let len = self.u32()?;
        if len > MAX_NAME_LEN {
            return Err(SnapshotError::Format(format!(
                "{what} length {len} exceeds {MAX_NAME_LEN}"
            )));
        }
        let mut bytes = vec![0u8; len as usize];
        self.exact(&mut bytes)?;
        String::from_utf8(bytes)
            .map_err(|_| SnapshotError::Format(format!("{what} is not valid UTF-8")))
    }
}

/// A truncated file is a *format* problem (torn write), not an
/// environment problem — report it as such so corruption-fallback logic
/// treats both identically.
fn truncation_as_format(e: io::Error, msg: &str) -> SnapshotError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        SnapshotError::Format(msg.to_string())
    } else {
        SnapshotError::Io(e)
    }
}

/// Parse a TFSN snapshot, validating every length field, every section
/// CRC, and the trailing file CRC. Never panics on malformed input.
pub fn from_reader<R: Read>(reader: R) -> Result<Snapshot, SnapshotError> {
    let mut r = CrcReader {
        inner: reader,
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 4];
    r.exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::Format(format!("wrong magic {magic:?}")));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let epoch = r.u64()?;
    let algo = r.name("algorithm tag")?;
    let section_count = r.u32()?;
    if section_count > MAX_SECTIONS {
        return Err(SnapshotError::Format(format!(
            "section count {section_count} exceeds {MAX_SECTIONS}"
        )));
    }
    let mut sections = Vec::with_capacity(section_count as usize);
    for _ in 0..section_count {
        let name = r.name("section name")?;
        let word_count = r.u64()?;
        let word_count = usize::try_from(word_count)
            .map_err(|_| SnapshotError::Format(format!("section {name:?} claims absurd size")))?;
        // Chunked read: a lying count fails at EOF after reading what is
        // actually there, instead of pre-allocating the claimed size.
        let mut words: Vec<u64> = Vec::new();
        let mut section_crc = Crc32::new();
        let mut remaining = word_count;
        let mut chunk = vec![0u8; CHUNK_WORDS * 8];
        while remaining > 0 {
            let take = remaining.min(CHUNK_WORDS);
            let bytes = &mut chunk[..take * 8];
            r.exact(bytes)?;
            section_crc.update(bytes);
            words.extend(
                bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
            );
            remaining -= take;
        }
        let stored_crc = r.u32()?;
        if stored_crc != section_crc.finish() {
            return Err(SnapshotError::Format(format!(
                "section {name:?} checksum mismatch"
            )));
        }
        sections.push(Section { name, words });
    }
    let computed_file_crc = r.crc.finish();
    let mut trailer = [0u8; 4];
    r.inner
        .read_exact(&mut trailer)
        .map_err(|e| truncation_as_format(e, "missing file checksum"))?;
    if u32::from_le_bytes(trailer) != computed_file_crc {
        return Err(SnapshotError::Format("file checksum mismatch".into()));
    }
    Ok(Snapshot {
        algo,
        epoch,
        sections,
    })
}

/// Load and validate the snapshot at `path`.
///
/// Unlike [`from_reader`] (which streams and can only check the
/// whole-file CRC *after* consuming every field), this reads the file
/// once and validates the trailing whole-file CRC **first**. Ordering
/// matters for the generation store: a torn or bit-flipped file whose
/// header bytes — including the epoch the store sorts generations by —
/// still parse must be rejected outright, never half-trusted. It also
/// rejects trailing garbage past the checksummed prefix, which the
/// streaming parser cannot see.
pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 4 {
        return Err(SnapshotError::Format(
            "file shorter than its checksum".into(),
        ));
    }
    let (prefix, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte trailer"));
    if crc32(prefix) != stored {
        return Err(SnapshotError::Format("file checksum mismatch".into()));
    }
    // The CRC pins the exact file length, so the streaming parser below
    // cannot run past the trailer or leave garbage unexamined.
    from_reader(&bytes[..])
}

// ------------------------------------------------------- generation store

/// What [`SnapshotStore::load_latest`] found.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The newest valid snapshot.
    pub snapshot: Snapshot,
    /// 1 when a *newer but corrupt/torn* generation was skipped to reach
    /// this snapshot, 0 otherwise.
    pub fallbacks: u64,
}

/// Two-generation rotating snapshot store.
///
/// Writes alternate between slots `gen0`/`gen1`; the slot being replaced
/// is always the *older* one, so the most recent durable snapshot
/// survives even a crash in the middle of a write. One writer at a time
/// (the epoch coordinator guarantees this); loading is safe anytime.
pub struct SnapshotStore {
    dir: PathBuf,
    prefix: String,
    next_slot: AtomicUsize,
}

impl SnapshotStore {
    /// Open (creating `dir` if needed) a store for snapshots named
    /// `prefix`. Existing generations are probed so a reopened store keeps
    /// rotating correctly after a crash.
    pub fn open(dir: &Path, prefix: &str) -> Result<Self, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let store = SnapshotStore {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            next_slot: AtomicUsize::new(0),
        };
        // Overwrite the older (or invalid) generation first.
        if let [Ok(a), Ok(b)] = store.probe() {
            store
                .next_slot
                .store(usize::from(a.epoch >= b.epoch), Ordering::Relaxed);
        } else if let [_, Ok(_)] = store.probe() {
            store.next_slot.store(0, Ordering::Relaxed);
        } else if let [Ok(_), _] = store.probe() {
            store.next_slot.store(1, Ordering::Relaxed);
        }
        Ok(store)
    }

    /// Path of generation `slot` (0 or 1).
    pub fn generation_path(&self, slot: usize) -> PathBuf {
        self.dir.join(format!("{}.gen{slot}.tfsn", self.prefix))
    }

    /// Path of the in-flight temp file for `slot` — the write-temp window
    /// residue a crash between the temp write and the rename leaves
    /// behind. `write` truncates it on the next rotation into the same
    /// slot, so stale residue is inert; exposed so the recovery harness
    /// can forge and inspect exactly that state.
    pub fn temp_path(&self, slot: usize) -> PathBuf {
        self.dir.join(format!("{}.tmp{slot}", self.prefix))
    }

    /// The slot the next [`Self::write`] will rotate into.
    pub fn next_slot(&self) -> usize {
        self.next_slot.load(Ordering::Relaxed)
    }

    fn probe(&self) -> [Result<Snapshot, SnapshotError>; 2] {
        [
            load(&self.generation_path(0)),
            load(&self.generation_path(1)),
        ]
    }

    /// Durably write `snap` into the next rotation slot: serialize to a
    /// temp file, sync, rename over the slot. Returns the slot path.
    ///
    /// Not safe for concurrent writers (the epoch barrier serializes
    /// checkpoint writes by construction).
    pub fn write(&self, snap: &Snapshot) -> Result<PathBuf, SnapshotError> {
        let slot = self.next_slot.load(Ordering::Relaxed);
        let bytes = to_bytes(snap)?;
        let tmp = self.temp_path(slot);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        let dest = self.generation_path(slot);
        std::fs::rename(&tmp, &dest)?;
        self.next_slot.store(1 - slot, Ordering::Relaxed);
        Ok(dest)
    }

    /// The newest valid snapshot across both generations.
    ///
    /// A corrupt or torn newer generation is skipped (reported via
    /// [`LoadedSnapshot::fallbacks`]); only when *no* generation validates
    /// does this return [`SnapshotError::NoValidSnapshot`].
    pub fn load_latest(&self) -> Result<LoadedSnapshot, SnapshotError> {
        let [a, b] = self.probe();
        let present = |slot: usize| self.generation_path(slot).exists();
        match (a, b) {
            (Ok(a), Ok(b)) => {
                let snapshot = if a.epoch >= b.epoch { a } else { b };
                Ok(LoadedSnapshot {
                    snapshot,
                    fallbacks: 0,
                })
            }
            (Ok(snapshot), Err(_)) => Ok(LoadedSnapshot {
                snapshot,
                fallbacks: u64::from(present(1)),
            }),
            (Err(_), Ok(snapshot)) => Ok(LoadedSnapshot {
                snapshot,
                fallbacks: u64::from(present(0)),
            }),
            (Err(_), Err(_)) => Err(SnapshotError::NoValidSnapshot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("tufast-snapshot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(&dir, "test").unwrap()
    }

    fn sample(epoch: u64) -> Snapshot {
        Snapshot {
            algo: "bfs".into(),
            epoch,
            sections: vec![
                Section {
                    name: "dist".into(),
                    words: (0..100).map(|i| i * epoch).collect(),
                },
                Section {
                    name: "frontier".into(),
                    words: vec![1, 2, 3],
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample(7);
        let bytes = to_bytes(&snap).unwrap();
        let back = from_reader(bytes.as_slice()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.section("dist").unwrap().words.len(), 100);
        assert!(back.section("missing").is_none());
    }

    /// `load` must reject any corruption via the trailing whole-file CRC
    /// *before* parsing a single field — in particular before trusting
    /// the epoch the generation store sorts by, and before a corrupted
    /// section length can steer the parser.
    #[test]
    fn load_validates_whole_file_crc_before_parsing() {
        let dir =
            std::env::temp_dir().join(format!("tufast-snapshot-crcfirst-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.tfsn");
        let good = to_bytes(&sample(9)).unwrap();

        // Pristine file loads.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load(&path).unwrap().epoch, 9);

        // Flip one bit in every byte position that matters structurally:
        // magic, version, epoch, a section length, section payload.
        for pos in [0usize, 5, 9, 30, good.len() / 2] {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                matches!(load(&path), Err(SnapshotError::Format(_))),
                "bit flip at byte {pos} must be rejected"
            );
        }

        // Truncation (torn write) is rejected, including below 4 bytes.
        for keep in [0usize, 3, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..keep]).unwrap();
            assert!(
                matches!(load(&path), Err(SnapshotError::Format(_))),
                "truncation to {keep} bytes must be rejected"
            );
        }

        // Trailing garbage past the checksummed prefix is rejected too —
        // the streaming parser alone cannot see it.
        let mut padded = good.clone();
        padded.extend_from_slice(b"junk");
        std::fs::write(&path, &padded).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = to_bytes(&sample(3)).unwrap();
        // Step through the file corrupting one byte at a time: the loader
        // must reject every variant (magic, lengths, payload, CRCs).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                from_reader(bad.as_slice()).is_err(),
                "flip at offset {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_a_format_error() {
        let bytes = to_bytes(&sample(3)).unwrap();
        for cut in [1, 10, bytes.len() / 2, bytes.len() - 1] {
            match from_reader(&bytes[..cut]) {
                Err(SnapshotError::Format(_)) => {}
                other => panic!("cut at {cut}: expected Format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn adversarial_bytes_never_panic() {
        // Seeded byte soup, plus targeted liars: huge section counts, huge
        // word counts, huge name lengths. All must return Err, not panic
        // or OOM.
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^ (x >> 31)
        };
        for len in [0usize, 3, 16, 64, 300] {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert!(from_reader(bytes.as_slice()).is_err());
        }
        // Valid prefix, absurd section metadata.
        let mut lying = Vec::new();
        lying.extend_from_slice(MAGIC);
        lying.extend_from_slice(&VERSION.to_le_bytes());
        lying.extend_from_slice(&0u64.to_le_bytes()); // epoch
        lying.extend_from_slice(&u32::MAX.to_le_bytes()); // tag length lies
        assert!(from_reader(lying.as_slice()).is_err());

        let mut lying = Vec::new();
        lying.extend_from_slice(MAGIC);
        lying.extend_from_slice(&VERSION.to_le_bytes());
        lying.extend_from_slice(&0u64.to_le_bytes());
        lying.extend_from_slice(&1u32.to_le_bytes());
        lying.push(b'x');
        lying.extend_from_slice(&1u32.to_le_bytes()); // one section
        lying.extend_from_slice(&1u32.to_le_bytes());
        lying.push(b's');
        lying.extend_from_slice(&u64::MAX.to_le_bytes()); // word count lies
        assert!(from_reader(lying.as_slice()).is_err());
    }

    #[test]
    fn store_rotates_two_generations() {
        let store = temp_store("rotate");
        for epoch in 1..=3 {
            store.write(&sample(epoch)).unwrap();
        }
        assert!(store.generation_path(0).exists());
        assert!(store.generation_path(1).exists());
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.snapshot.epoch, 3);
        assert_eq!(loaded.fallbacks, 0);
    }

    #[test]
    fn corrupt_latest_falls_back_one_generation() {
        let store = temp_store("fallback");
        store.write(&sample(1)).unwrap();
        store.write(&sample(2)).unwrap();
        // Epoch 2 lives in slot 1 (slot 0 was written first). Corrupt it.
        let latest = store.generation_path(1);
        let mut bytes = std::fs::read(&latest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&latest, &bytes).unwrap();

        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.snapshot.epoch, 1, "must fall back to epoch 1");
        assert_eq!(loaded.fallbacks, 1);
    }

    #[test]
    fn torn_write_falls_back() {
        let store = temp_store("torn");
        store.write(&sample(1)).unwrap();
        store.write(&sample(2)).unwrap();
        let latest = store.generation_path(1);
        let bytes = std::fs::read(&latest).unwrap();
        std::fs::write(&latest, &bytes[..bytes.len() / 3]).unwrap();

        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.snapshot.epoch, 1);
        assert_eq!(loaded.fallbacks, 1);
    }

    #[test]
    fn both_corrupt_reports_no_valid_snapshot() {
        let store = temp_store("allbad");
        store.write(&sample(1)).unwrap();
        store.write(&sample(2)).unwrap();
        for slot in 0..2 {
            std::fs::write(store.generation_path(slot), b"TFSNgarbage").unwrap();
        }
        assert!(matches!(
            store.load_latest(),
            Err(SnapshotError::NoValidSnapshot)
        ));
    }

    #[test]
    fn empty_store_reports_no_valid_snapshot() {
        let store = temp_store("empty");
        assert!(matches!(
            store.load_latest(),
            Err(SnapshotError::NoValidSnapshot)
        ));
    }

    #[test]
    fn reopened_store_resumes_rotation_over_the_older_slot() {
        let dir =
            std::env::temp_dir().join(format!("tufast-snapshot-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = SnapshotStore::open(&dir, "test").unwrap();
            store.write(&sample(1)).unwrap(); // slot 0
            store.write(&sample(2)).unwrap(); // slot 1
        }
        // Reopen (simulating a restart) and write epoch 3: it must land in
        // slot 0 (the older generation), keeping epoch 2 intact.
        let store = SnapshotStore::open(&dir, "test").unwrap();
        store.write(&sample(3)).unwrap();
        assert_eq!(load(&store.generation_path(0)).unwrap().epoch, 3);
        assert_eq!(load(&store.generation_path(1)).unwrap().epoch, 2);
    }

    #[test]
    fn oversized_names_are_rejected_at_write_time() {
        let snap = Snapshot {
            algo: "x".repeat(300),
            epoch: 0,
            sections: Vec::new(),
        };
        assert!(matches!(to_bytes(&snap), Err(SnapshotError::Format(_))));
    }
}
