//! SNAP-format edge-list I/O.
//!
//! The paper's datasets (friendster from SNAP, twitter-mpi, sk-2005,
//! uk-2007-05 from WebGraph) ship as whitespace-separated `src dst` lines
//! with `#` comments. This loader accepts that format so the real files can
//! be used verbatim when available; the benchmarks default to synthetic
//! stand-ins.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// Options controlling edge-list parsing.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadOptions {
    /// Also build the reverse adjacency.
    pub in_edges: bool,
    /// Add the reverse of every edge (undirected view).
    pub symmetric: bool,
}

/// Errors from edge-list loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor `src dst[ weight]`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// More distinct vertex ids than the `u32` id space can hold.
    TooManyVertices,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            LoadError::TooManyVertices => {
                write!(f, "more distinct vertex ids than the u32 id space holds")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } | LoadError::TooManyVertices => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parse a SNAP edge list from a reader. Vertex ids are compacted to a
/// dense `0..n` range in first-appearance order; an optional third column
/// per line is taken as an edge weight.
pub fn read_edge_list<R: BufRead>(reader: R, opts: LoadOptions) -> Result<Graph, LoadError> {
    let mut edges: Vec<(u64, u64, Option<u32>)> = Vec::new();
    let mut any_weight = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok.and_then(|t| t.parse().ok()) };
        let (src, dst) = match (parse(it.next()), parse(it.next())) {
            (Some(s), Some(d)) => (s, d),
            _ => {
                return Err(LoadError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let weight = match it.next() {
            Some(tok) => match tok.parse::<u32>() {
                Ok(w) => {
                    any_weight = true;
                    Some(w)
                }
                Err(_) => {
                    return Err(LoadError::Parse {
                        line: idx + 1,
                        content: trimmed.to_string(),
                    })
                }
            },
            None => None,
        };
        edges.push((src, dst, weight));
    }

    // Remap ids densely. Files commonly have sparse id spaces — a hash map
    // keeps memory proportional to the *distinct* ids actually seen, so a
    // single adversarial line like `0 99999999999999` cannot drive a huge
    // allocation (the previous dense table was indexed by the max id).
    let mut remap: std::collections::HashMap<u64, VertexId> = std::collections::HashMap::new();
    let mut next: VertexId = 0;
    let mut overflow = false;
    let mut map = |raw: u64, remap: &mut std::collections::HashMap<u64, VertexId>| -> VertexId {
        *remap.entry(raw).or_insert_with(|| {
            let id = next;
            let (bumped, wrapped) = next.overflowing_add(1);
            next = bumped;
            overflow |= wrapped;
            id
        })
    };
    let mapped: Vec<(VertexId, VertexId, Option<u32>)> = edges
        .iter()
        .map(|&(s, d, w)| (map(s, &mut remap), map(d, &mut remap), w))
        .collect();
    if overflow {
        return Err(LoadError::TooManyVertices);
    }

    let mut builder = GraphBuilder::new(next as usize).with_edge_capacity(mapped.len());
    if opts.in_edges {
        builder = builder.with_in_edges();
    }
    if opts.symmetric {
        builder = builder.symmetric();
    }
    for (s, d, w) in mapped {
        if any_weight {
            builder.add_weighted_edge(s, d, w.unwrap_or(1));
        } else {
            builder.add_edge(s, d);
        }
    }
    Ok(builder.build())
}

/// Load a SNAP edge-list file.
pub fn load_edge_list(path: &Path, opts: LoadOptions) -> Result<Graph, LoadError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file), opts)
}

/// Write a graph as a SNAP edge list (with weights if present).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(
        out,
        "# Directed edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    match g.weights() {
        Some(_) => {
            for v in g.vertices() {
                for (u, w) in g.weighted_neighbors(v) {
                    writeln!(out, "{v}\t{u}\t{w}")?;
                }
            }
        }
        None => {
            for (s, d) in g.edges() {
                writeln!(out, "{s}\t{d}")?;
            }
        }
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format_with_comments() {
        let data = "# Nodes: 3 Edges: 3\n0 1\n1 2\n2 0\n";
        let g = read_edge_list(data.as_bytes(), LoadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn compacts_sparse_ids() {
        let data = "100 7\n7 100\n7 2000000\n";
        let g = read_edge_list(data.as_bytes(), LoadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn astronomically_sparse_ids_do_not_blow_memory() {
        // Before the hash-map remap this allocated a u64::MAX-element
        // dense table. Must just parse into a 2-vertex graph.
        let data = format!("0 {}\n", u64::MAX);
        let g = read_edge_list(data.as_bytes(), LoadOptions::default()).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adversarial_lines_never_panic() {
        // Byte soup, overlong tokens, negative numbers, unicode: every
        // outcome must be Ok or a structured error, never a panic.
        for data in [
            "-1 2\n",
            "1 2 3 4 5\n",
            "99999999999999999999999999 1\n",
            "1 \u{1F980}\n",
            "\u{0} \u{0}\n",
            "18446744073709551615 0\n",
        ] {
            let _ = read_edge_list(data.as_bytes(), LoadOptions::default());
        }
    }

    #[test]
    fn rejects_garbage_lines_with_location() {
        let data = "0 1\nnot an edge\n";
        let err = read_edge_list(data.as_bytes(), LoadOptions::default()).unwrap_err();
        match err {
            LoadError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not an edge");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn weighted_third_column() {
        let data = "0 1 5\n1 2 9\n";
        let g = read_edge_list(data.as_bytes(), LoadOptions::default()).unwrap();
        assert!(g.has_weights());
        assert_eq!(g.weighted_neighbors(0).collect::<Vec<_>>(), vec![(1, 5)]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = crate::gen::rmat(6, 4, 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), LoadOptions::default()).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        // Ids are re-compacted in appearance order, so compare degree
        // multisets instead of adjacency.
        let mut d1: Vec<usize> = g
            .vertices()
            .map(|v| g.degree(v))
            .filter(|&d| d > 0)
            .collect();
        let mut d2: Vec<usize> = g2
            .vertices()
            .map(|v| g2.degree(v))
            .filter(|&d| d > 0)
            .collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn symmetric_option_doubles_edges() {
        let data = "0 1\n";
        let g = read_edge_list(
            data.as_bytes(),
            LoadOptions {
                symmetric: true,
                in_edges: false,
            },
        )
        .unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
