//! Binary CSR cache format.
//!
//! Parsing multi-gigabyte edge lists dominates start-up for real datasets;
//! graph systems (Ligra, GraphChi, …) all ship a binary pre-converted
//! format for this reason. This one stores the CSR arrays directly:
//!
//! ```text
//! magic "TFG1" | flags u32 | num_vertices u64 | num_edges u64
//! offsets  (num_vertices+1) × u64 LE
//! targets  num_edges × u32 LE
//! [weights num_edges × u32 LE]           — iff flags & WEIGHTS
//! [in_offsets / in_targets as above]     — iff flags & IN_EDGES
//! ```
//!
//! Loading is a few large reads plus validation — no per-edge parsing.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

const MAGIC: &[u8; 4] = b"TFG1";
const FLAG_WEIGHTS: u32 = 1;
const FLAG_IN_EDGES: u32 = 2;

/// Errors from binary graph I/O.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a TFG1 file, or structurally invalid.
    Format(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::Format(m) => write!(f, "bad TFG1 file: {m}"),
        }
    }
}

impl std::error::Error for BinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinError::Io(e) => Some(e),
            BinError::Format(_) => None,
        }
    }
}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

fn write_u32s<W: Write>(out: &mut W, values: impl Iterator<Item = u32>) -> io::Result<()> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn write_u64s<W: Write>(out: &mut W, values: impl Iterator<Item = u64>) -> io::Result<()> {
    for v in values {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Payloads are read in bounded chunks: a corrupt header lying about
/// element counts fails at end-of-file after reading what is actually
/// there, instead of pre-allocating the claimed (possibly absurd) size.
const CHUNK_ELEMS: usize = 1 << 16;

fn read_u32s<R: Read>(input: &mut R, n: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::new();
    let mut chunk = vec![0u8; CHUNK_ELEMS * 4];
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK_ELEMS);
        let bytes = &mut chunk[..take * 4];
        input.read_exact(bytes)?;
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

fn read_u64s<R: Read>(input: &mut R, n: usize) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut chunk = vec![0u8; CHUNK_ELEMS * 8];
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK_ELEMS);
        let bytes = &mut chunk[..take * 8];
        input.read_exact(bytes)?;
        out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Write `g` in TFG1 format.
pub fn write_graph<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    let mut flags = 0u32;
    if g.has_weights() {
        flags |= FLAG_WEIGHTS;
    }
    if g.reverse().is_some() {
        flags |= FLAG_IN_EDGES;
    }
    out.write_all(MAGIC)?;
    out.write_all(&flags.to_le_bytes())?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&g.num_edges().to_le_bytes())?;

    let n = g.num_vertices() as VertexId;
    let mut offset = 0u64;
    write_u64s(
        &mut out,
        (0..=n).map(|v| {
            if v == 0 {
                return 0;
            }
            offset += g.degree(v - 1) as u64;
            offset
        }),
    )?;
    write_u32s(
        &mut out,
        (0..n).flat_map(|v| g.neighbors(v).iter().copied()),
    )?;
    if let Some(w) = g.weights() {
        write_u32s(&mut out, w.iter().copied())?;
    }
    if g.reverse().is_some() {
        let mut offset = 0u64;
        write_u64s(
            &mut out,
            (0..=n).map(|v| {
                if v == 0 {
                    return 0;
                }
                offset += g.in_degree(v - 1) as u64;
                offset
            }),
        )?;
        write_u32s(
            &mut out,
            (0..n).flat_map(|v| g.in_neighbors(v).iter().copied()),
        )?;
    }
    out.flush()
}

/// Read a TFG1 graph.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, BinError> {
    let mut input = BufReader::new(reader);
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::Format(format!("wrong magic {magic:?}")));
    }
    let mut word = [0u8; 4];
    input.read_exact(&mut word)?;
    let flags = u32::from_le_bytes(word);
    if flags & !(FLAG_WEIGHTS | FLAG_IN_EDGES) != 0 {
        return Err(BinError::Format(format!("unknown flags {flags:#x}")));
    }
    let mut qword = [0u8; 8];
    input.read_exact(&mut qword)?;
    let num_vertices_raw = u64::from_le_bytes(qword);
    input.read_exact(&mut qword)?;
    let num_edges = u64::from_le_bytes(qword);
    // Vertex ids are u32 throughout; a header beyond that range is corrupt
    // (and would otherwise silently truncate in the casts below).
    if num_vertices_raw > u64::from(u32::MAX) {
        return Err(BinError::Format(format!(
            "vertex count {num_vertices_raw} exceeds the u32 id range"
        )));
    }
    let num_vertices = num_vertices_raw as usize;
    let num_edges_len = usize::try_from(num_edges)
        .map_err(|_| BinError::Format(format!("edge count {num_edges} is not addressable")))?;

    let offsets = read_u64s(&mut input, num_vertices + 1)?;
    if offsets.first() != Some(&0)
        || offsets.last() != Some(&num_edges)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(BinError::Format("non-monotonic offsets".into()));
    }
    let targets = read_u32s(&mut input, num_edges_len)?;
    if targets.iter().any(|&t| t as usize >= num_vertices) {
        return Err(BinError::Format("target out of range".into()));
    }
    let weights = if flags & FLAG_WEIGHTS != 0 {
        Some(read_u32s(&mut input, num_edges_len)?)
    } else {
        None
    };
    // In-edges are recomputed by the builder rather than trusted (the file
    // may be hand-made; correctness beats the small rebuild cost). Their
    // offsets are still validated so corruption is reported as such.
    let want_in = flags & FLAG_IN_EDGES != 0;
    if want_in {
        let in_offsets = read_u64s(&mut input, num_vertices + 1)?;
        if in_offsets.first() != Some(&0) || in_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(BinError::Format("non-monotonic in-offsets".into()));
        }
        let in_edges = usize::try_from(*in_offsets.last().unwrap_or(&0))
            .map_err(|_| BinError::Format("in-edge count is not addressable".into()))?;
        let _ = read_u32s(&mut input, in_edges)?;
    }

    let mut builder = GraphBuilder::new(num_vertices)
        .with_edge_capacity(num_edges as usize)
        .keep_duplicates()
        .keep_self_loops();
    if want_in {
        builder = builder.with_in_edges();
    }
    for v in 0..num_vertices {
        let range = offsets[v] as usize..offsets[v + 1] as usize;
        for i in range {
            match &weights {
                Some(w) => builder.add_weighted_edge(v as VertexId, targets[i], w[i]),
                None => builder.add_edge(v as VertexId, targets[i]),
            }
        }
    }
    Ok(builder.build())
}

/// Save `g` to `path`.
pub fn save(g: &Graph, path: &Path) -> io::Result<()> {
    write_graph(g, std::fs::File::create(path)?)
}

/// Load a graph from `path`.
pub fn load(path: &Path) -> Result<Graph, BinError> {
    read_graph(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(buf.as_slice()).unwrap()
    }

    #[test]
    fn plain_graph_roundtrips_exactly() {
        let g = gen::rmat(8, 6, 3);
        let g2 = roundtrip(&g);
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(
            g2.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn weighted_graph_roundtrips_exactly() {
        let g = gen::with_random_weights(&gen::grid2d(7, 5), 20, 9);
        let g2 = roundtrip(&g);
        assert!(g2.has_weights());
        for v in g.vertices() {
            assert_eq!(
                g.weighted_neighbors(v).collect::<Vec<_>>(),
                g2.weighted_neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn in_edges_flag_rebuilds_reverse_adjacency() {
        let base = gen::rmat(7, 4, 5);
        let mut b = crate::GraphBuilder::new(base.num_vertices());
        for (s, d) in base.edges() {
            b.add_edge(s, d);
        }
        let g = b.with_in_edges().build();
        let g2 = roundtrip(&g);
        assert!(g2.reverse().is_some());
        for v in g.vertices() {
            assert_eq!(g.in_neighbors(v), g2.in_neighbors(v));
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        let err = read_graph(&b"NOPE....."[..]).unwrap_err();
        assert!(matches!(err, BinError::Format(_)));
    }

    #[test]
    fn rejects_out_of_range_targets() {
        // Handcraft: 1 vertex, 1 edge pointing at vertex 7.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TFG1");
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes());
        let err = read_graph(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinError::Format(_)));
    }

    #[test]
    fn rejects_lying_headers_without_allocating() {
        // Header claims u64::MAX vertices/edges over a tiny body: the
        // chunked reader must fail fast at EOF, not pre-allocate.
        for (nv, ne) in [
            (u64::MAX, 0u64),
            (1 << 40, 1 << 40),
            (4, u64::MAX),
            (u64::from(u32::MAX) + 1, 0),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(b"TFG1");
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&nv.to_le_bytes());
            buf.extend_from_slice(&ne.to_le_bytes());
            buf.extend_from_slice(&[0u8; 64]);
            assert!(read_graph(buf.as_slice()).is_err(), "nv={nv} ne={ne}");
        }
    }

    #[test]
    fn rejects_non_monotonic_in_offsets() {
        // Valid forward CSR (1 vertex, 0 edges) + garbage in-offsets.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TFG1");
        buf.extend_from_slice(&2u32.to_le_bytes()); // FLAG_IN_EDGES
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[1]
        buf.extend_from_slice(&9u64.to_le_bytes()); // in_offsets[0] != 0
        buf.extend_from_slice(&1u64.to_le_bytes()); // decreasing
        let err = read_graph(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinError::Format(_)));
    }

    #[test]
    fn adversarial_bytes_never_panic() {
        // Seeded byte soup at assorted lengths: every parse must return
        // Err (or a tiny valid graph), never panic.
        let mut state = 0x7F65_21C3u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^ (x >> 31)
        };
        for len in [0usize, 4, 12, 24, 64, 256, 1024] {
            for _round in 0..8 {
                let mut bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                let _ = read_graph(bytes.as_slice());
                // Again with a valid magic so the header fields get fuzzed.
                if bytes.len() >= 4 {
                    bytes[..4].copy_from_slice(b"TFG1");
                    let _ = read_graph(bytes.as_slice());
                }
            }
        }
    }

    #[test]
    fn rejects_truncated_file() {
        let g = gen::path(5);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_graph(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let g = gen::grid2d(6, 6);
        let dir = std::env::temp_dir().join("tufast-binio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tfg");
        save(&g, &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(
            g2.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
        let _ = std::fs::remove_file(&path);
    }
}
