//! The item scanner: walks a token stream and recovers the structure the
//! rules need — functions (name, parameter tokens, body token range),
//! enclosing `impl Trait for` blocks, `#[cfg(test)]` exclusion, and the
//! `tufast-lint:` directives bound to items or lines.
//!
//! Directives (in `//` or `/* */` comments):
//!
//! * `tufast-lint: allow(<rule>) -- <reason>` — suppress findings of
//!   `<rule>` on this line and the next code line. The reason is
//!   mandatory: a missing one is itself a finding.
//! * `tufast-lint: htm-scope` — the next `fn` (or every fn in the next
//!   `impl` block) runs inside a hardware transaction; the HTM-hazard
//!   rule scans it.
//! * `tufast-lint: lock-acquire(<class>)` — the next code line is a
//!   blocking acquisition of lock class `<class>` (for acquisitions the
//!   built-in patterns cannot see, e.g. CAS spin loops on a token word).
//! * `tufast-lint: unwind-entry` — the next `fn` is a scheduler entry
//!   point that must route worker closures through `catch_unwind`.

use crate::lexer::{lex, Comment, Tok, Token};

/// One scanned function.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the parameter list (inside the parens).
    pub params: (usize, usize),
    /// Token index range of the body (inside the braces); `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Inside a `#[cfg(test)]` module or under `#[test]`.
    pub in_test: bool,
    /// Marked (directly or via its impl block) as an HTM scope.
    pub htm_scope: bool,
    /// Marked as an unwind-containment entry point.
    pub unwind_entry: bool,
    /// Trait name when defined in an `impl Trait for Type` block.
    pub impl_of: Option<String>,
}

/// An inline suppression.
#[derive(Debug)]
pub struct Suppression {
    pub rule: String,
    /// Lines the suppression covers (its own line + the next code line).
    pub lines: Vec<u32>,
    pub has_reason: bool,
    /// Line of the directive itself (for missing-reason findings).
    pub line: u32,
}

/// A `lock-acquire(<class>)` site.
#[derive(Debug)]
pub struct AcquireMark {
    pub class: String,
    /// The code line the directive binds to.
    pub line: u32,
}

/// Everything the rules need from one source file.
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub tokens: Vec<Token>,
    pub fns: Vec<FnInfo>,
    pub suppressions: Vec<Suppression>,
    pub acquire_marks: Vec<AcquireMark>,
    /// Malformed directives: (line, message).
    pub directive_errors: Vec<(u32, String)>,
}

impl FileModel {
    /// Index of the function whose body contains token `idx`, if any.
    pub fn fn_at(&self, idx: usize) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| f.body.is_some_and(|(s, e)| idx >= s && idx < e))
    }

    /// True if `line` of `rule` findings is suppressed.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && s.lines.contains(&line))
    }
}

#[derive(Debug)]
enum Directive {
    Allow { rule: String, has_reason: bool },
    HtmScope,
    LockAcquire { class: String },
    UnwindEntry,
}

/// Parse the directives out of a file's comments.
type ParsedDirectives = (Vec<(u32, Directive)>, Vec<(u32, String)>);

fn parse_directives(comments: &[Comment]) -> ParsedDirectives {
    let mut out = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Only a comment that *starts* with the directive (after its
        // `//`/`/*`/doc sigils) counts — prose and backticked examples
        // in documentation never do.
        let head = c.text.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(tail) = head.strip_prefix("tufast-lint:") else {
            continue;
        };
        let rest = tail.trim().trim_end_matches("*/").trim();
        if let Some(args) = rest.strip_prefix("allow(") {
            let Some(close) = args.find(')') else {
                errors.push((c.line, "unterminated allow(...)".to_string()));
                continue;
            };
            let rule = args[..close].trim().to_string();
            let tail = args[close + 1..].trim();
            let has_reason = tail
                .strip_prefix("--")
                .is_some_and(|r| !r.trim().is_empty());
            out.push((c.line, Directive::Allow { rule, has_reason }));
        } else if let Some(args) = rest.strip_prefix("lock-acquire(") {
            let Some(close) = args.find(')') else {
                errors.push((c.line, "unterminated lock-acquire(...)".to_string()));
                continue;
            };
            out.push((
                c.line,
                Directive::LockAcquire {
                    class: args[..close].trim().to_string(),
                },
            ));
        } else if rest.starts_with("htm-scope") {
            out.push((c.line, Directive::HtmScope));
        } else if rest.starts_with("unwind-entry") {
            out.push((c.line, Directive::UnwindEntry));
        } else {
            errors.push((c.line, format!("unknown directive `{rest}`")));
        }
    }
    (out, errors)
}

/// How far below its comment a marker directive may bind to an item
/// (attributes and doc lines may sit in between).
const MARKER_REACH: u32 = 6;

/// Scan one file into a [`FileModel`].
pub fn scan_file(path: String, src: &str) -> FileModel {
    let (tokens, comments) = lex(src);
    let (directives, mut directive_errors) = parse_directives(&comments);

    let mut suppressions = Vec::new();
    let mut acquire_marks = Vec::new();
    // Item markers still waiting for their fn/impl: (line, kind, consumed).
    let mut htm_marks: Vec<(u32, bool)> = Vec::new();
    let mut unwind_marks: Vec<(u32, bool)> = Vec::new();

    let next_code_line =
        |line: u32| -> Option<u32> { tokens.iter().map(|t| t.line).find(|&l| l > line) };

    for (line, d) in &directives {
        match d {
            Directive::Allow { rule, has_reason } => {
                let mut lines = vec![*line];
                if let Some(next) = next_code_line(*line) {
                    lines.push(next);
                }
                suppressions.push(Suppression {
                    rule: rule.clone(),
                    lines,
                    has_reason: *has_reason,
                    line: *line,
                });
            }
            Directive::LockAcquire { class } => {
                // Bind to the next code line (or this one, for trailing
                // comments on the acquisition line itself).
                let bound = tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l >= *line)
                    .unwrap_or(*line);
                acquire_marks.push(AcquireMark {
                    class: class.clone(),
                    line: bound,
                });
            }
            Directive::HtmScope => htm_marks.push((*line, false)),
            Directive::UnwindEntry => unwind_marks.push((*line, false)),
        }
    }

    // Item pass: a tiny cursor machine over the token stream. Contexts
    // nest through an explicit stack so `mod tests { impl X { fn .. } }`
    // resolves flags correctly.
    #[derive(Clone)]
    struct Ctx {
        /// Token index at which this context's block closes.
        end: usize,
        in_test: bool,
        htm_scope: bool,
        impl_of: Option<String>,
    }

    let take_mark = |marks: &mut Vec<(u32, bool)>, item_line: u32| -> bool {
        for m in marks.iter_mut() {
            if !m.1 && m.0 <= item_line && item_line.saturating_sub(m.0) <= MARKER_REACH {
                m.1 = true;
                return true;
            }
        }
        false
    };

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut stack: Vec<Ctx> = vec![Ctx {
        end: tokens.len(),
        in_test: false,
        htm_scope: false,
        impl_of: None,
    }];
    let mut pending_test = false;
    let mut i = 0usize;
    while i < tokens.len() {
        while stack.len() > 1 && i >= stack.last().unwrap().end {
            stack.pop();
        }
        let cur = stack.last().unwrap().clone();
        match &tokens[i].tok {
            Tok::Punct('#')
                if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) =>
            {
                let close = match_bracket(&tokens, i + 1, '[', ']');
                let is_test_attr = tokens[i + 1..close]
                    .iter()
                    .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "test"));
                if is_test_attr {
                    pending_test = true;
                }
                i = close + 1;
            }
            Tok::Ident(kw) if kw == "mod" => {
                // `mod name { .. }` or `mod name;`
                let mut j = i + 1;
                while j < tokens.len()
                    && !matches!(tokens[j].tok, Tok::Punct('{') | Tok::Punct(';'))
                {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].tok == Tok::Punct('{') {
                    let end = match_bracket(&tokens, j, '{', '}');
                    stack.push(Ctx {
                        end,
                        in_test: cur.in_test || pending_test,
                        htm_scope: false,
                        impl_of: None,
                    });
                    pending_test = false;
                    i = j + 1;
                } else {
                    pending_test = false;
                    i = j + 1;
                }
            }
            Tok::Ident(kw) if kw == "impl" => {
                let marked = take_mark(&mut htm_marks, tokens[i].line);
                // Header runs to the opening brace; pull the trait name if
                // a top-level `for` is present.
                let mut j = i + 1;
                let mut idents_before_for: Vec<String> = Vec::new();
                let mut trait_name = None;
                while j < tokens.len() && tokens[j].tok != Tok::Punct('{') {
                    match &tokens[j].tok {
                        Tok::Ident(s) if s == "for" => {
                            trait_name = idents_before_for.last().cloned();
                        }
                        Tok::Ident(s) if trait_name.is_none() && s != "where" => {
                            idents_before_for.push(s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < tokens.len() {
                    let end = match_bracket(&tokens, j, '{', '}');
                    stack.push(Ctx {
                        end,
                        in_test: cur.in_test || pending_test,
                        htm_scope: cur.htm_scope || marked,
                        impl_of: trait_name,
                    });
                    pending_test = false;
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let fn_line = tokens[i].line;
                let name = match tokens.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => s.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let mut j = i + 2;
                // Skip generic params (angle depth; `->` inside bounds has
                // its `>` preceded by `-`).
                if j < tokens.len() && tokens[j].tok == Tok::Punct('<') {
                    let mut depth = 0i32;
                    while j < tokens.len() {
                        match tokens[j].tok {
                            Tok::Punct('<') => depth += 1,
                            Tok::Punct('>') => {
                                let arrow = j > 0 && tokens[j - 1].tok == Tok::Punct('-');
                                if !arrow {
                                    depth -= 1;
                                    if depth == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if j >= tokens.len() || tokens[j].tok != Tok::Punct('(') {
                    i += 1;
                    continue;
                }
                let params_close = match_bracket(&tokens, j, '(', ')');
                let params = (j + 1, params_close);
                // Find `{` or `;` at round/square bracket depth 0.
                let mut k = params_close + 1;
                let mut depth = 0i32;
                let mut body = None;
                let mut body_end = k;
                while k < tokens.len() {
                    match tokens[k].tok {
                        Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct(';') if depth == 0 => {
                            body_end = k + 1;
                            break;
                        }
                        Tok::Punct('{') if depth == 0 => {
                            let close = match_bracket(&tokens, k, '{', '}');
                            body = Some((k + 1, close));
                            body_end = close + 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                fns.push(FnInfo {
                    htm_scope: cur.htm_scope || take_mark(&mut htm_marks, fn_line),
                    unwind_entry: take_mark(&mut unwind_marks, fn_line),
                    name,
                    line: fn_line,
                    params,
                    body,
                    in_test: cur.in_test || pending_test,
                    impl_of: cur.impl_of.clone(),
                });
                pending_test = false;
                i = if body_end > i { body_end } else { i + 1 };
                // Note: bodies are not re-entered, so nested fns inside a
                // body are not itemized — the rules treat a body as one
                // region, which is what the passes want.
            }
            _ => i += 1,
        }
    }

    for (line, used) in htm_marks
        .iter()
        .filter(|(_, used)| !used)
        .map(|m| (m.0, m.1))
    {
        let _ = used;
        directive_errors.push((line, "htm-scope marker bound to no fn/impl".to_string()));
    }
    for (line, _) in unwind_marks.iter().filter(|(_, used)| !used) {
        directive_errors.push((*line, "unwind-entry marker bound to no fn".to_string()));
    }

    FileModel {
        path,
        tokens,
        fns,
        suppressions,
        acquire_marks,
        directive_errors,
    }
}

/// Index of the bracket matching `tokens[open]` (which must be `open_c`);
/// returns `tokens.len()` when unbalanced.
fn match_bracket(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct(c) if c == open_c => depth += 1,
            Tok::Punct(c) if c == close_c => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// True when the parameter list of `f` mentions identifier `name`.
pub fn params_contain(model: &FileModel, f: &FnInfo, name: &str) -> bool {
    model.tokens[f.params.0..f.params.1]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_test_mods() {
        let src = r#"
            fn top(a: u32) -> u32 { a }
            impl TxnOps for W {
                fn read(&mut self) {}
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {}
            }
        "#;
        let m = scan_file("x.rs".into(), src);
        let names: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(names, vec![("top", false), ("read", false), ("t", true)]);
        assert_eq!(m.fns[1].impl_of.as_deref(), Some("TxnOps"));
    }

    #[test]
    fn markers_bind_to_items() {
        let src = r#"
            // tufast-lint: htm-scope
            fn hot(ctx: &mut Thing) {}
            // tufast-lint: htm-scope
            impl Ops for W {
                fn inner(&mut self) {}
            }
            fn cold() {}
        "#;
        let m = scan_file("x.rs".into(), src);
        assert!(m.fns.iter().find(|f| f.name == "hot").unwrap().htm_scope);
        assert!(m.fns.iter().find(|f| f.name == "inner").unwrap().htm_scope);
        assert!(!m.fns.iter().find(|f| f.name == "cold").unwrap().htm_scope);
    }

    #[test]
    fn suppressions_cover_next_code_line() {
        let src = "// tufast-lint: allow(htm-hazard) -- scratch is presized\nlet x = v.push(1);\nlet y = 2;\n";
        let m = scan_file("x.rs".into(), src);
        assert!(m.suppressed("htm-hazard", 2));
        assert!(!m.suppressed("htm-hazard", 3));
        assert!(m.suppressions[0].has_reason);
    }

    #[test]
    fn trait_decl_has_no_body() {
        let m = scan_file(
            "x.rs".into(),
            "trait T { fn execute(&mut self, b: B) -> O; }",
        );
        assert!(m.fns[0].body.is_none());
    }

    #[test]
    fn return_type_array_semicolon_is_not_decl_end() {
        let m = scan_file("x.rs".into(), "fn f() -> [u8; 4] { [0; 4] }");
        assert!(m.fns[0].body.is_some());
    }
}
