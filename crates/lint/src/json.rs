//! Minimal JSON support (the lint is dependency-free by design): an
//! escaping emitter plus a small recursive-descent parser — just enough
//! for the baseline file, the lock-order artifact, and the golden
//! fixture diagnostics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `f64`; the lint only ever
/// stores small counts and line numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(n) => Some(*n as u32),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escape `s` as the inside of a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let b: Vec<char> = src.chars().collect();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    b: Vec<char>,
    i: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some('{') => self.obj(),
            Some('[') => self.arr(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.lit("true", Value::Bool(true)),
            Some('f') => self.lit("false", Value::Bool(false)),
            Some('n') => self.lit("null", Value::Null),
            Some(c) if *c == '-' || c.is_ascii_digit() => self.num(),
            _ => Err(format!("unexpected character at offset {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn num(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let s: String = self.b[start..self.i].iter().collect();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{s}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex: String = self.b.iter().skip(self.i).take(4).collect();
                            if hex.len() != 4 {
                                return Err("truncated \\u escape".to_string());
                            }
                            self.i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn arr(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(',') => {
                    self.i += 1;
                }
                Some(']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn obj(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(',') => {
                    self.i += 1;
                }
                Some('}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse(r#"{"a": [1, "x\n", true, null], "b": {"c": -2.5}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Num(-2.5)));
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let round = format!("\"{}\"", esc("a\"b\\c\nd"));
        assert_eq!(parse(&round).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
    }
}
