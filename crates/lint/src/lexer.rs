//! A minimal Rust lexer: just enough to tokenize the workspace sources
//! with line numbers, while getting the hard cases right — nested block
//! comments, raw/byte strings, and the `'a` lifetime vs `'a'` char
//! ambiguity. Comments are captured separately because they carry the
//! `tufast-lint:` directives.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive tokens; the scanners only ever match single chars).
    Punct(char),
    /// Any string literal (regular, raw, byte); contents discarded so
    /// pattern text inside strings can never trip a rule.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// A token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Tokenize `src`, returning code tokens and comments separately.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: b[start..i].iter().collect(),
                });
            }
            '"' => {
                let l = line;
                i = skip_string(&b, i, &mut line);
                toks.push(Token {
                    tok: Tok::Str,
                    line: l,
                });
            }
            '\'' => {
                // Lifetime iff `'ident` NOT followed by a closing quote.
                let is_lifetime = i + 1 < n
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < n && b[i + 2] == '\'');
                if is_lifetime {
                    let l = line;
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Lifetime,
                        line: l,
                    });
                } else {
                    let l = line;
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 2; // escape + escaped char
                                // \x41 / \u{..} style escapes: run to the quote.
                        while i < n && b[i] != '\'' {
                            i += 1;
                        }
                    } else if i < n {
                        i += 1;
                    }
                    if i < n && b[i] == '\'' {
                        i += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Char,
                        line: l,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let l = line;
                i += 1;
                while i < n
                    && (b[i].is_alphanumeric()
                        || b[i] == '_'
                        || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit())
                        || ((b[i] == '+' || b[i] == '-')
                            && matches!(b[i - 1], 'e' | 'E')
                            && b[i - 1].is_alphabetic()))
                {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Num,
                    line: l,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let l = line;
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Raw / byte string or byte char prefixes.
                if (ident == "r" || ident == "br") && i < n && (b[i] == '"' || b[i] == '#') {
                    i = skip_raw_string(&b, i, &mut line);
                    toks.push(Token {
                        tok: Tok::Str,
                        line: l,
                    });
                } else if ident == "b" && i < n && b[i] == '"' {
                    i = skip_string(&b, i, &mut line);
                    toks.push(Token {
                        tok: Tok::Str,
                        line: l,
                    });
                } else if ident == "b" && i < n && b[i] == '\'' {
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 2;
                    } else if i < n {
                        i += 1;
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    if i < n {
                        i += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Char,
                        line: l,
                    });
                } else {
                    toks.push(Token {
                        tok: Tok::Ident(ident),
                        line: l,
                    });
                }
            }
            other => {
                toks.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Skip a regular (escape-aware) string starting at the opening quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(b[i], '"');
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string; `i` points at the first `#` or `"` after the `r`.
fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == '"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let x = "unwrap() panic!";"#), vec!["let", "x"]);
        assert_eq!(idents(r##"let x = r#"format!("{}")"#;"##), vec!["let", "x"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let (t, _) = lex("fn f<'a>(x: &'a u8) -> char { 'x' }");
        let lifetimes = t.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = t.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn comments_and_lines() {
        let (t, c) = lex("a // one\n/* two\nlines */ b");
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].line, 1);
        assert_eq!(c[1].line, 2);
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 3); // `b` after the two-line block comment
    }

    #[test]
    fn nested_block_comments() {
        let (t, c) = lex("/* outer /* inner */ still */ x");
        assert_eq!(c.len(), 1);
        assert_eq!(t.len(), 1);
    }
}
