//! The five rule families plus shared token-walking helpers.

pub mod htm;
pub mod lockorder;
pub mod ordering;
pub mod readpurity;
pub mod unwind;

use crate::lexer::{Tok, Token};
use crate::scan::FileModel;

/// True if `tokens[i]` is the identifier `name`.
pub(crate) fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Ident(s)) if s == name)
}

/// The identifier at `tokens[i]`, if any.
pub(crate) fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// True if `tokens[i]` is punctuation `c`.
pub(crate) fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Keywords that look like `ident (` but are not calls.
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "else", "let",
    "mut", "ref", "pub", "where", "impl", "dyn",
];

/// Collect the bare names of everything `body` calls: `name(...)` and
/// `.name(...)` alike. Name-based and type-blind by design — the
/// consumers treat the result as a may-call set.
pub(crate) fn callee_names(model: &FileModel, body: (usize, usize)) -> Vec<(String, usize)> {
    let t = &model.tokens;
    let mut out = Vec::new();
    for i in body.0..body.1 {
        let Some(name) = ident_at(t, i) else { continue };
        if !is_punct(t, i + 1, '(') {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i > 0 && is_ident(t, i - 1, "fn") {
            continue;
        }
        // Skip obvious enum/struct constructors: a capitalized bare name
        // is almost always `Some(..)` / `Ok(..)` / a tuple struct.
        let method = i > 0 && is_punct(t, i - 1, '.');
        if !method && name.chars().next().is_some_and(char::is_uppercase) {
            continue;
        }
        out.push((name.to_string(), i));
    }
    out
}
