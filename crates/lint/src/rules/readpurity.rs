//! Read-purity: a transaction body dispatched with `read_only = true`
//! must never reach `TxnOps::write`.
//!
//! The `TxnHint::read_only` declaration routes the body to the R-mode
//! snapshot path; a body that writes anyway is caught at runtime and
//! demoted to the ordinary path (correct but wasted work — the R attempt
//! runs, trips, and restarts), so the declaration is a latent lie this
//! pass catches statically.
//!
//! A dispatch site is a call `execute_hinted(...)` whose argument tokens
//! contain `read_only(` (the `TxnHint::read_only` constructor) or
//! `read_only: true` (a struct literal). Within that argument range —
//! which includes the body closure — the pass flags:
//!
//! * a direct `.write(` method call, and
//! * a call to any function whose parameters mention `TxnOps` and whose
//!   body (transitively, through further `TxnOps`-taking functions) may
//!   write.
//!
//! Name-based and type-blind like every pass here; `#[cfg(test)]` code is
//! exempt (tests deliberately exercise the demotion path).

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Finding;
use crate::rules::{callee_names, ident_at, is_punct};
use crate::scan::{params_contain, FileModel};

pub const RULE: &str = "read-purity";

pub fn run(files: &[FileModel]) -> Vec<Finding> {
    // Global name → definitions, restricted to functions that take a
    // TxnOps-ish parameter: only those can smuggle a transactional write
    // into a body on the caller's behalf.
    let mut ops_fns: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (mi, m) in files.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if !f.in_test && f.body.is_some() && params_contain(m, f, "TxnOps") {
                ops_fns.entry(f.name.as_str()).or_default().push((mi, fi));
            }
        }
    }

    // Fixpoint over `may_write`: seed with direct `.write(` calls, then
    // propagate backwards along calls into TxnOps-taking functions.
    let direct_write = |m: &FileModel, body: (usize, usize)| -> Option<u32> {
        let t = &m.tokens;
        (body.0..body.1).find_map(|i| {
            (ident_at(t, i) == Some("write")
                && i > body.0
                && is_punct(t, i - 1, '.')
                && is_punct(t, i + 1, '('))
            .then(|| t[i].line)
        })
    };
    let mut may_write: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut callees: BTreeMap<(usize, usize), BTreeSet<(usize, usize)>> = BTreeMap::new();
    for defs in ops_fns.values() {
        for &(mi, fi) in defs {
            let m = &files[mi];
            let body = m.fns[fi].body.expect("ops_fns keeps bodied fns only");
            if direct_write(m, body).is_some() {
                may_write.insert((mi, fi));
            }
            let mut set = BTreeSet::new();
            for (name, _) in callee_names(m, body) {
                if let Some(next) = ops_fns.get(name.as_str()) {
                    set.extend(next.iter().copied());
                }
            }
            callees.insert((mi, fi), set);
        }
    }
    loop {
        let mut changed = false;
        for (caller, set) in &callees {
            if !may_write.contains(caller) && set.iter().any(|c| may_write.contains(c)) {
                may_write.insert(*caller);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for m in files {
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            let Some((start, end)) = f.body else { continue };
            let t = &m.tokens;
            for i in start..end {
                if ident_at(t, i) != Some("execute_hinted") || !is_punct(t, i + 1, '(') {
                    continue;
                }
                let args = match argument_range(m, i + 1, end) {
                    Some(r) => r,
                    None => continue,
                };
                if !declares_read_only(m, args) {
                    continue;
                }
                if let Some(line) = direct_write(m, args) {
                    out.push(finding(
                        m,
                        f,
                        line,
                        "write-in-pure-body",
                        "body dispatched with read_only = true calls TxnOps::write; \
                         the R attempt always trips and demotes",
                    ));
                }
                for (name, at) in callee_names(m, args) {
                    if let Some(defs) = ops_fns.get(name.as_str()) {
                        if defs.iter().any(|d| may_write.contains(d)) {
                            out.push(finding(
                                m,
                                f,
                                t[at].line,
                                "write-reachable-from-pure-body",
                                &format!(
                                    "body dispatched with read_only = true calls `{name}`, \
                                     which (transitively) performs TxnOps::write"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Token range strictly inside the parens opening at `open` (which must
/// hold `(`), clamped to `end`.
fn argument_range(m: &FileModel, open: usize, end: usize) -> Option<(usize, usize)> {
    let t = &m.tokens;
    let mut depth = 0usize;
    for i in open..end {
        if is_punct(t, i, '(') {
            depth += 1;
        } else if is_punct(t, i, ')') {
            depth -= 1;
            if depth == 0 {
                return Some((open + 1, i));
            }
        }
    }
    None
}

/// Whether the argument tokens declare purity: `read_only(` (the
/// `TxnHint::read_only` constructor) or `read_only : true` (struct
/// literal syntax).
fn declares_read_only(m: &FileModel, args: (usize, usize)) -> bool {
    let t = &m.tokens;
    (args.0..args.1).any(|i| {
        ident_at(t, i) == Some("read_only")
            && (is_punct(t, i + 1, '(')
                || (is_punct(t, i + 1, ':') && ident_at(t, i + 2) == Some("true")))
    })
}

fn finding(m: &FileModel, f: &crate::scan::FnInfo, line: u32, code: &str, why: &str) -> Finding {
    Finding {
        rule: RULE.to_string(),
        file: m.path.clone(),
        line,
        function: f.name.clone(),
        code: code.to_string(),
        detail: why.to_string(),
    }
}
