//! Lock-order: extract the static lock-acquisition graph and fail on
//! potential deadlock cycles; the discovered order is emitted as a
//! machine-checked artifact (`lint-lock-order.json`).
//!
//! ## Model
//!
//! Acquisition *sites* are recognized per function:
//!
//! * `try_shared(..)` / `try_exclusive(..)` / `try_upgrade(..)` — the
//!   per-vertex 2PL lock words (class `vertex_lock`, try-only at the
//!   call itself; the blocking wrappers in `tpl.rs` carry
//!   `lock-acquire(vertex_lock)` markers).
//! * `try_lock_line(..)` — the HTM emulation's per-line commit locks
//!   (class `htm_line_lock`, bounded-try, address-sorted).
//! * `recv.lock(..)` — a mutex, classed `mutex:<file>.<recv>`.
//! * `// tufast-lint: lock-acquire(<class>)` — a blocking acquisition
//!   the patterns cannot see (CAS spin loops on token words).
//!
//! A *summary* (which classes a function may acquire, transitively) is
//! propagated over a name-based call graph, with one semantic bridge:
//! `run_body` dispatches the transaction body through `dyn TxnOps`, so
//! it may call every `fn` defined in an `impl TxnOps for ..` block.
//!
//! Edges `A -> B` mean "B acquired while A may be held": A must come
//! from a *direct* site (locks acquired inside callees are assumed
//! released on return — the one deliberate under-approximation, noted
//! in the artifact); B may come from a direct site or a callee summary.
//! A cycle among blocking targets is a potential deadlock. Classes with
//! a documented intra-class discipline (`vertex_lock`: runtime deadlock
//! detection; `htm_line_lock`: sorted + bounded-try) are exempt from
//! self-edges.

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Finding;
use crate::rules::{callee_names, ident_at, is_punct};
use crate::scan::FileModel;

pub const RULE: &str = "lock-order";

/// Raw try-acquisition patterns: callee name → class.
const TRY_PATTERNS: &[(&str, &str)] = &[
    ("try_shared", "vertex_lock"),
    ("try_exclusive", "vertex_lock"),
    ("try_upgrade", "vertex_lock"),
    ("try_lock_line", "htm_line_lock"),
];

/// Classes whose intra-class (self-edge) discipline is established
/// elsewhere and documented in the artifact notes.
const SELF_ORDERED: &[&str] = &["vertex_lock", "htm_line_lock"];

/// Documentation notes keyed by class (carried into the artifact).
const CLASS_NOTES: &[(&str, &str)] = &[
    (
        "vertex_lock",
        "per-vertex 2PL lock words; intra-class order unrestricted — L mode relies on runtime \
         deadlock detection/victimization, O/TO commit paths acquire sorted and bounded-try",
    ),
    (
        "htm_line_lock",
        "per-line commit locks inside the HTM emulation; acquired in sorted address order, \
         bounded-try, never held across user code",
    ),
    (
        "serial_token",
        "the single global stop-the-world word (serial-fallback ladder and epoch coordinator)",
    ),
    (
        "hsync_fallback",
        "HSync's global fallback lock word; subscription makes it mutually safe with the HTM path",
    ),
    (
        "mutex:durable.wal",
        "the durable-graph commit lock: WAL append + fsync + transactional apply happen under it, \
         so log order is commit order; it may wait on scheduler locks but never the reverse",
    ),
];

/// Callee names never resolved when propagating lock summaries: common
/// std-collection/iterator methods whose names collide with first-party
/// functions (`Vec::push` vs `Band::push`) or that cannot take locks.
const RESOLVE_BLOCKLIST: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clear",
    "drain",
    "extend",
    "len",
    "iter",
    "iter_mut",
    "next",
    "map",
    "take",
    "drop",
    "clone",
    "store",
    "load",
    "swap",
    "read",
    "write",
    "send",
    "recv",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "min",
    "max",
    "new",
    "default",
    "from",
    "into",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "as_ref",
    "as_mut",
    "collect",
    "filter",
    "fold",
    "for_each",
    "find",
    "any",
    "all",
    "sum",
    "count",
    "enumerate",
    "zip",
    "contains",
    "sort",
    "sort_unstable",
    "dedup",
    "with_capacity",
    "reserve",
    "resize",
    "truncate",
    "is_empty",
    "last",
    "first",
];

/// One acquisition site (direct or via a callee summary).
struct Site {
    line: u32,
    /// (class, acquired-blocking).
    classes: Vec<(String, bool)>,
    direct: bool,
}

/// A lock-order edge for the artifact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub function: String,
    pub line: u32,
    pub blocking_target: bool,
    pub suppressed: bool,
}

/// The lock-order analysis result.
pub struct LockOrder {
    /// class → (blocking seen, direct site count).
    pub classes: BTreeMap<String, (bool, u32)>,
    pub edges: Vec<Edge>,
    /// Topological order over the unsuppressed blocking-target subgraph;
    /// empty when that graph is cyclic (the findings carry the cycles).
    pub order: Vec<String>,
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

/// Direct sites of one function, and the token indices they occupy
/// (excluded from callee resolution).
fn direct_sites(m: &FileModel, body: (usize, usize)) -> (Vec<(usize, Site)>, BTreeSet<usize>) {
    let t = &m.tokens;
    let stem = file_stem(&m.path);
    let mut sites = Vec::new();
    let mut occupied = BTreeSet::new();
    for i in body.0..body.1 {
        let Some(name) = ident_at(t, i) else { continue };
        if !is_punct(t, i + 1, '(') {
            continue;
        }
        if let Some((_, class)) = TRY_PATTERNS.iter().find(|(n, _)| *n == name) {
            sites.push((
                i,
                Site {
                    line: t[i].line,
                    classes: vec![((*class).to_string(), false)],
                    direct: true,
                },
            ));
            occupied.insert(i);
        } else if name == "lock" && i > body.0 && is_punct(t, i - 1, '.') {
            let recv = ident_at(t, i.wrapping_sub(2)).unwrap_or("expr");
            sites.push((
                i,
                Site {
                    line: t[i].line,
                    classes: vec![(format!("mutex:{stem}.{recv}"), true)],
                    direct: true,
                },
            ));
            occupied.insert(i);
        }
    }
    // lock-acquire(<class>) marks landing inside this body.
    for mark in &m.acquire_marks {
        if let Some(idx) = (body.0..body.1).find(|&j| t[j].line == mark.line) {
            sites.push((
                idx,
                Site {
                    line: mark.line,
                    classes: vec![(mark.class.clone(), true)],
                    direct: true,
                },
            ));
        }
    }
    (sites, occupied)
}

/// Run the pass over all files; returns findings plus the artifact data.
pub fn run(files: &[FileModel]) -> (Vec<Finding>, LockOrder) {
    // ---- function universe -------------------------------------------------
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    let mut txn_ops_impls: Vec<(usize, usize)> = Vec::new();
    for (mi, m) in files.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            by_name.entry(f.name.as_str()).or_default().push((mi, fi));
            if f.impl_of.as_deref() == Some("TxnOps") {
                txn_ops_impls.push((mi, fi));
            }
        }
    }

    // ---- per-fn direct sites + resolvable callees --------------------------
    // (token idx, line, resolved definitions) of one call site.
    type Callee = (usize, u32, Vec<(usize, usize)>);
    struct FnData {
        sites: Vec<(usize, Site)>,
        callees: Vec<Callee>,
    }
    let mut data: BTreeMap<(usize, usize), FnData> = BTreeMap::new();
    for (mi, m) in files.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(body) = f.body else { continue };
            let (sites, occupied) = direct_sites(m, body);
            let mut callees = Vec::new();
            for (name, idx) in callee_names(m, body) {
                if occupied.contains(&idx) || RESOLVE_BLOCKLIST.contains(&name.as_str()) {
                    continue;
                }
                let mut defs = by_name.get(name.as_str()).cloned().unwrap_or_default();
                if name == "run_body" {
                    // Dynamic-dispatch bridge: the body may call any TxnOps impl.
                    defs.extend(txn_ops_impls.iter().copied());
                }
                if !defs.is_empty() {
                    callees.push((idx, m.tokens[idx].line, defs));
                }
            }
            data.insert((mi, fi), FnData { sites, callees });
        }
    }

    // ---- transitive may-acquire summaries (fixpoint) -----------------------
    let mut summary: BTreeMap<(usize, usize), BTreeMap<String, bool>> = BTreeMap::new();
    for (key, d) in &data {
        let mut s = BTreeMap::new();
        for (_, site) in &d.sites {
            for (c, blocking) in &site.classes {
                let e = s.entry(c.clone()).or_insert(false);
                *e = *e || *blocking;
            }
        }
        summary.insert(*key, s);
    }
    loop {
        let mut changed = false;
        let keys: Vec<_> = data.keys().copied().collect();
        for key in keys {
            let mut add: Vec<(String, bool)> = Vec::new();
            for (_, _, defs) in &data[&key].callees {
                for def in defs {
                    if *def == key {
                        continue;
                    }
                    if let Some(s) = summary.get(def) {
                        for (c, b) in s {
                            add.push((c.clone(), *b));
                        }
                    }
                }
            }
            let s = summary.get_mut(&key).unwrap();
            for (c, b) in add {
                let e = s.entry(c).or_insert_with(|| {
                    changed = true;
                    b
                });
                if b && !*e {
                    *e = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- edges -------------------------------------------------------------
    let mut classes: BTreeMap<String, (bool, u32)> = BTreeMap::new();
    for d in data.values() {
        for (_, site) in &d.sites {
            for (c, blocking) in &site.classes {
                let e = classes.entry(c.clone()).or_insert((false, 0));
                e.0 = e.0 || *blocking;
                e.1 += 1;
            }
        }
    }

    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for ((mi, fi), d) in &data {
        let m = &files[*mi];
        let f = &m.fns[*fi];
        // Ordered site list: direct sites plus callee-summary sites.
        let mut all: Vec<Site> = Vec::new();
        for (idx, site) in &d.sites {
            let _ = idx;
            all.push(Site {
                line: site.line,
                classes: site.classes.clone(),
                direct: true,
            });
        }
        let mut order_keys: Vec<(usize, usize)> = d
            .sites
            .iter()
            .enumerate()
            .map(|(k, (idx, _))| (*idx, k))
            .collect();
        for (idx, line, defs) in &d.callees {
            let mut cl: BTreeMap<String, bool> = BTreeMap::new();
            for def in defs {
                if let Some(s) = summary.get(def) {
                    for (c, b) in s {
                        let e = cl.entry(c.clone()).or_insert(false);
                        *e = *e || *b;
                    }
                }
            }
            if cl.is_empty() {
                continue;
            }
            order_keys.push((*idx, all.len()));
            all.push(Site {
                line: *line,
                classes: cl.into_iter().collect(),
                direct: false,
            });
        }
        order_keys.sort();
        let ordered: Vec<&Site> = order_keys.iter().map(|(_, k)| &all[*k]).collect();
        for i in 0..ordered.len() {
            if !ordered[i].direct {
                continue; // callee-held locks assumed released on return
            }
            for j in (i + 1)..ordered.len() {
                for (a, _) in &ordered[i].classes {
                    for (b, b_blocking) in &ordered[j].classes {
                        if a == b && SELF_ORDERED.contains(&a.as_str()) {
                            continue;
                        }
                        edges.insert(Edge {
                            from: a.clone(),
                            to: b.clone(),
                            file: m.path.clone(),
                            function: f.name.clone(),
                            line: ordered[j].line,
                            blocking_target: *b_blocking,
                            suppressed: m.suppressed(RULE, ordered[j].line),
                        });
                    }
                }
            }
        }
    }

    // ---- findings: self-edges and cycles ----------------------------------
    let mut findings = Vec::new();
    let live: Vec<&Edge> = edges
        .iter()
        .filter(|e| !e.suppressed && e.blocking_target)
        .collect();
    for e in &live {
        if e.from == e.to {
            findings.push(Finding {
                rule: RULE.to_string(),
                file: e.file.clone(),
                line: e.line,
                function: e.function.clone(),
                code: "self-cycle".to_string(),
                detail: format!(
                    "lock class `{}` re-acquired (blocking) while already held, with no \
                     documented intra-class order",
                    e.from
                ),
            });
        }
    }
    // Cycle detection (iterative DFS, deterministic order).
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &live {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS from `start`, only reporting cycles that return to `start`
        // and only when `start` is the lexicographically smallest class in
        // the cycle (canonical form, so each cycle is reported once).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&Edge> = Vec::new();
        while let Some((node, next)) = stack.pop() {
            let succ = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if next < succ.len() {
                stack.push((node, next + 1));
                let e = succ[next];
                if e.to == start {
                    let mut cyc: Vec<String> = path.iter().map(|p| p.from.clone()).collect();
                    cyc.push(node.to_string());
                    if cyc.iter().min().map(String::as_str) == Some(start)
                        && seen_cycles.insert(cyc.clone())
                    {
                        let mut chain = cyc.join(" -> ");
                        chain.push_str(" -> ");
                        chain.push_str(start);
                        findings.push(Finding {
                            rule: RULE.to_string(),
                            file: e.file.clone(),
                            line: e.line,
                            function: e.function.clone(),
                            code: "deadlock-cycle".to_string(),
                            detail: format!("lock acquisition cycle: {chain}"),
                        });
                    }
                } else if e.to.as_str() > start
                    && !path.iter().any(|p| p.from == e.to)
                    && node != e.to
                {
                    path.push(e);
                    stack.push((e.to.as_str(), 0));
                }
            } else if path.last().map(|p| p.to.as_str()) == Some(node) {
                path.pop();
            }
        }
    }

    // ---- dangling lock-acquire marks --------------------------------------
    for (mi, m) in files.iter().enumerate() {
        let _ = mi;
        for mark in &m.acquire_marks {
            let bound = m.fns.iter().any(|f| {
                f.body
                    .is_some_and(|(s, e)| (s..e).any(|j| m.tokens[j].line == mark.line))
                    && !f.in_test
            });
            let in_test_fn = m.fns.iter().any(|f| {
                f.in_test
                    && f.body
                        .is_some_and(|(s, e)| (s..e).any(|j| m.tokens[j].line == mark.line))
            });
            if !bound && !in_test_fn {
                findings.push(Finding {
                    rule: RULE.to_string(),
                    file: m.path.clone(),
                    line: mark.line,
                    function: "<module>".to_string(),
                    code: "dangling-directive".to_string(),
                    detail: format!(
                        "lock-acquire({}) marker does not land inside any function body",
                        mark.class
                    ),
                });
            }
        }
    }

    // ---- topological order -------------------------------------------------
    let order = topo_order(&live);

    (
        findings,
        LockOrder {
            classes,
            edges: edges.into_iter().collect(),
            order,
        },
    )
}

/// Kahn's algorithm over the blocking-target subgraph; empty on cycles.
fn topo_order(live: &[&Edge]) -> Vec<String> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let mut indeg: BTreeMap<&str, usize> = BTreeMap::new();
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in live {
        if e.from == e.to {
            continue;
        }
        nodes.insert(e.from.as_str());
        nodes.insert(e.to.as_str());
        if succ
            .entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str())
        {
            *indeg.entry(e.to.as_str()).or_insert(0) += 1;
        }
        indeg.entry(e.from.as_str()).or_insert(0);
    }
    let mut ready: Vec<&str> = nodes
        .iter()
        .filter(|n| indeg.get(*n).copied().unwrap_or(0) == 0)
        .copied()
        .collect();
    let mut out = Vec::new();
    while let Some(n) = ready.pop() {
        out.push(n.to_string());
        for s in succ.get(n).cloned().unwrap_or_default() {
            let d = indeg.get_mut(s).unwrap();
            *d -= 1;
            if *d == 0 {
                ready.push(s);
                ready.sort();
                ready.reverse(); // pop smallest first → deterministic
            }
        }
    }
    if out.len() == nodes.len() {
        out
    } else {
        Vec::new()
    }
}

/// Class note for the artifact.
pub fn class_note(class: &str) -> &'static str {
    CLASS_NOTES
        .iter()
        .find(|(c, _)| *c == class)
        .map(|(_, n)| *n)
        .unwrap_or("")
}

/// Render the artifact as canonical JSON.
pub fn artifact_json(lo: &LockOrder) -> String {
    use crate::json::esc;
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"version\": 1,\n  \"note\": \"A -> B means B is acquired while A may be held. Locks acquired inside callees are assumed released on return; blocking_target=false edges end in bounded-try acquisitions and cannot deadlock.\",\n  \"classes\": [");
    for (i, (name, (blocking, sites))) in lo.classes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"blocking\": {}, \"sites\": {}, \"note\": \"{}\"}}",
            esc(name),
            blocking,
            sites,
            esc(class_note(name))
        );
    }
    out.push_str("\n  ],\n  \"edges\": [");
    for (i, e) in lo.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \"function\": \"{}\", \"line\": {}, \"blocking_target\": {}, \"suppressed\": {}}}",
            esc(&e.from),
            esc(&e.to),
            esc(&e.file),
            esc(&e.function),
            e.line,
            e.blocking_target,
            e.suppressed
        );
    }
    out.push_str("\n  ],\n  \"order\": [");
    for (i, c) in lo.order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", esc(c));
    }
    out.push_str("]\n}\n");
    out
}
