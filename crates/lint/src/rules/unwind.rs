//! Unwind-containment: every scheduler entry point and work-pool drain
//! loop must route the user-supplied closure through `catch_unwind` (or
//! re-raise joined panics with `resume_unwind`) — PR 2's liveness
//! guarantee that a panicking body cannot strand locks, tokens, or pool
//! bookkeeping.
//!
//! Entry points are `execute`/`execute_bounded`/`execute_hinted`
//! functions taking a `TxnBody`, anything named `parallel_*`, and fns
//! carrying a
//! `// tufast-lint: unwind-entry` marker. Containment is checked over a
//! name-based transitive call graph: an entry is contained when its body
//! — or any function it (transitively) may call — mentions
//! `catch_unwind` or `resume_unwind`.

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Finding;
use crate::rules::callee_names;
use crate::scan::{params_contain, FileModel};

pub const RULE: &str = "unwind-containment";

pub fn run(files: &[FileModel], scope: &[String]) -> Vec<Finding> {
    // Global name → set of (file idx, fn idx), non-test fns only.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (mi, m) in files.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            if !f.in_test && f.body.is_some() {
                by_name.entry(f.name.as_str()).or_default().push((mi, fi));
            }
        }
    }

    // contains: the body itself mentions a containment primitive.
    let contains = |mi: usize, fi: usize| -> bool {
        let m = &files[mi];
        let (s, e) = m.fns[fi].body.unwrap();
        m.tokens[s..e].iter().any(|t| {
            matches!(&t.tok, crate::lexer::Tok::Ident(n)
                if n == "catch_unwind" || n == "resume_unwind")
        })
    };

    // Fixpoint over `reaches`: seed with direct containment, then
    // propagate backwards along call edges until stable.
    let mut reaches: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut callees: BTreeMap<(usize, usize), BTreeSet<(usize, usize)>> = BTreeMap::new();
    for (mi, m) in files.iter().enumerate() {
        for (fi, f) in m.fns.iter().enumerate() {
            let Some(body) = f.body else { continue };
            if f.in_test {
                continue;
            }
            if contains(mi, fi) {
                reaches.insert((mi, fi));
            }
            let mut set = BTreeSet::new();
            for (name, _) in callee_names(m, body) {
                if let Some(defs) = by_name.get(name.as_str()) {
                    set.extend(defs.iter().copied());
                }
            }
            callees.insert((mi, fi), set);
        }
    }
    loop {
        let mut changed = false;
        for (caller, set) in &callees {
            if !reaches.contains(caller) && set.iter().any(|c| reaches.contains(c)) {
                reaches.insert(*caller);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (mi, m) in files.iter().enumerate() {
        if !scope.iter().any(|s| m.path.contains(s.as_str())) {
            continue;
        }
        for (fi, f) in m.fns.iter().enumerate() {
            if f.in_test || f.body.is_none() {
                continue;
            }
            let scheduler_entry =
                (f.name == "execute" || f.name == "execute_bounded" || f.name == "execute_hinted")
                    && params_contain(m, f, "TxnBody");
            let drain_entry = f.name.starts_with("parallel_");
            if !(scheduler_entry || drain_entry || f.unwind_entry) {
                continue;
            }
            if !reaches.contains(&(mi, fi)) {
                out.push(Finding {
                    rule: RULE.to_string(),
                    file: m.path.clone(),
                    line: f.line,
                    function: f.name.clone(),
                    code: "missing-catch-unwind".to_string(),
                    detail: "entry point never reaches catch_unwind/resume_unwind; a \
                             panicking body would strand locks or pool bookkeeping"
                        .to_string(),
                });
            }
        }
    }
    out
}
