//! Memory-ordering: guard the Acquire/Release discipline of the hot
//! paths (PR 4's downgrade pass) in both directions.
//!
//! * `SeqCst` in scoped files (the work-distribution and HTM cores) is
//!   flagged: every remaining `SeqCst` there must carry an inline
//!   suppression explaining *why* it is load-bearing (the Chase–Lev
//!   top CAS, the Dekker-style park/wake counter). New `SeqCst` cannot
//!   land silently.
//! * `Relaxed` on a `.load`/`.store` of a flag that gates cross-thread
//!   hand-off (names like `done`, `pause`, `available`) is flagged: a
//!   relaxed flag read orders nothing, so the data it publishes may not
//!   be visible to the observer.

use crate::baseline::Finding;
use crate::rules::{ident_at, is_punct};
use crate::scan::FileModel;

pub const RULE: &str = "memory-ordering";

/// Identifiers that name cross-thread hand-off flags.
const HANDOFF_FLAGS: &[&str] = &[
    "done",
    "ready",
    "stop",
    "stopped",
    "pause",
    "paused",
    "shutdown",
    "finished",
    "quit",
    "closed",
    "crashed",
    "available",
    "terminated",
];

/// How many tokens past `.load(`/`.store(` to look for the ordering
/// (a fully qualified `std::sync::atomic::Ordering::Relaxed` is 13).
const ORDERING_WINDOW: usize = 16;

pub fn run(files: &[FileModel], scope: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        if !scope.iter().any(|s| m.path.contains(s.as_str())) {
            continue;
        }
        let t = &m.tokens;
        for i in 0..t.len() {
            let Some(name) = ident_at(t, i) else { continue };
            let in_test = m.fn_at(i).map(|fi| m.fns[fi].in_test).unwrap_or(false);
            if in_test {
                continue;
            }
            if name == "SeqCst" {
                out.push(Finding {
                    rule: RULE.to_string(),
                    file: m.path.clone(),
                    line: t[i].line,
                    function: enclosing(m, i),
                    code: "seqcst-hot-path".to_string(),
                    detail: "SeqCst on a hot-path atomic; justify with an inline allow or \
                             downgrade to Acquire/Release"
                        .to_string(),
                });
                continue;
            }
            // `flag . load|store ( .. Relaxed .. )`
            if HANDOFF_FLAGS.contains(&name)
                && is_punct(t, i + 1, '.')
                && matches!(ident_at(t, i + 2), Some("load") | Some("store"))
                && is_punct(t, i + 3, '(')
            {
                let relaxed = (i + 4..(i + 4 + ORDERING_WINDOW).min(t.len()))
                    .take_while(|&j| !is_punct(t, j, ';'))
                    .any(|j| ident_at(t, j) == Some("Relaxed"));
                if relaxed {
                    let op = ident_at(t, i + 2).unwrap_or("load");
                    out.push(Finding {
                        rule: RULE.to_string(),
                        file: m.path.clone(),
                        line: t[i].line,
                        function: enclosing(m, i),
                        code: "relaxed-handoff-flag".to_string(),
                        detail: format!(
                            "Relaxed `{op}` on hand-off flag `{name}`; the data it gates \
                             needs Acquire/Release to be visible"
                        ),
                    });
                }
            }
        }
    }
    out
}

fn enclosing(m: &FileModel, idx: usize) -> String {
    m.fn_at(idx)
        .map(|fi| m.fns[fi].name.clone())
        .unwrap_or_else(|| "<module>".to_string())
}
