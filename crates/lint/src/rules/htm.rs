//! HTM-hazard: heap allocation, I/O, and panics inside code that runs
//! within a hardware transaction.
//!
//! Real HTM aborts on anything that escapes the transactional cache
//! footprint: `malloc` (allocation), syscalls (I/O), and unwinding
//! (`panic!`/`unwrap`). The emulation in `tufast-htm` tolerates all
//! three, so only this pass keeps the code honest about what would
//! survive on TSX-class hardware.
//!
//! A function is an HTM scope when its parameter list mentions `HtmCtx`
//! (the H/O attempt drivers) or when it carries a
//! `// tufast-lint: htm-scope` marker (ops structs that reach the HTM
//! through `self.ctx`). `#[cfg(test)]` code is exempt.

use crate::baseline::Finding;
use crate::lexer::Tok;
use crate::rules::{ident_at, is_punct};
use crate::scan::{params_contain, FileModel};

pub const RULE: &str = "htm-hazard";

/// Banned macros: `name!` → (code, why).
const MACRO_BAN: &[(&str, &str, &str)] = &[
    (
        "format",
        "alloc-in-htm",
        "`format!` allocates; malloc aborts a real HTM transaction",
    ),
    (
        "vec",
        "alloc-in-htm",
        "`vec!` allocates; malloc aborts a real HTM transaction",
    ),
    (
        "println",
        "io-in-htm",
        "`println!` performs a write syscall; syscalls abort HTM",
    ),
    (
        "eprintln",
        "io-in-htm",
        "`eprintln!` performs a write syscall; syscalls abort HTM",
    ),
    (
        "print",
        "io-in-htm",
        "`print!` performs a write syscall; syscalls abort HTM",
    ),
    (
        "eprint",
        "io-in-htm",
        "`eprint!` performs a write syscall; syscalls abort HTM",
    ),
    (
        "dbg",
        "io-in-htm",
        "`dbg!` writes to stderr; syscalls abort HTM",
    ),
    (
        "panic",
        "panic-in-htm",
        "`panic!` unwinds through the open transaction",
    ),
    (
        "todo",
        "panic-in-htm",
        "`todo!` unwinds through the open transaction",
    ),
    (
        "unimplemented",
        "panic-in-htm",
        "`unimplemented!` unwinds through the open transaction",
    ),
];

/// Banned methods: `.name(` → (code, why). Token-exact, so `unwrap_or`
/// never matches `unwrap`.
const METHOD_BAN: &[(&str, &str, &str)] = &[
    (
        "unwrap",
        "panic-in-htm",
        "`.unwrap()` can unwind through the open transaction",
    ),
    (
        "expect",
        "panic-in-htm",
        "`.expect()` can unwind through the open transaction",
    ),
    (
        "clone",
        "alloc-in-htm",
        "`.clone()` on an owned collection allocates inside the transaction",
    ),
    (
        "push",
        "alloc-in-htm",
        "`.push()` may reallocate its buffer inside the transaction",
    ),
    (
        "insert",
        "alloc-in-htm",
        "`.insert()` may grow its table inside the transaction",
    ),
    (
        "collect",
        "alloc-in-htm",
        "`.collect()` allocates inside the transaction",
    ),
    (
        "to_string",
        "alloc-in-htm",
        "`.to_string()` allocates inside the transaction",
    ),
    (
        "to_owned",
        "alloc-in-htm",
        "`.to_owned()` allocates inside the transaction",
    ),
    (
        "to_vec",
        "alloc-in-htm",
        "`.to_vec()` allocates inside the transaction",
    ),
    (
        "reserve",
        "alloc-in-htm",
        "`.reserve()` reallocates inside the transaction",
    ),
    (
        "extend",
        "alloc-in-htm",
        "`.extend()` may reallocate inside the transaction",
    ),
    (
        "extend_from_slice",
        "alloc-in-htm",
        "`.extend_from_slice()` may reallocate inside the transaction",
    ),
    (
        "append",
        "io-in-htm",
        "`.append()` writes a WAL frame (or splices a buffer); durable I/O aborts HTM",
    ),
    (
        "commit_sync",
        "io-in-htm",
        "`.commit_sync()` may fsync the WAL; syscalls abort HTM",
    ),
    (
        "sync_now",
        "io-in-htm",
        "`.sync_now()` fsyncs the WAL; syscalls abort HTM",
    ),
    (
        "sync_data",
        "io-in-htm",
        "`.sync_data()` is an fdatasync syscall; syscalls abort HTM",
    ),
    (
        "sync_all",
        "io-in-htm",
        "`.sync_all()` is an fsync syscall; syscalls abort HTM",
    ),
];

/// Banned paths: `A::B` → (code, why).
const PATH_BAN: &[(&str, &str, &str, &str)] = &[
    (
        "Box",
        "new",
        "alloc-in-htm",
        "`Box::new` allocates inside the transaction",
    ),
    (
        "String",
        "from",
        "alloc-in-htm",
        "`String::from` allocates inside the transaction",
    ),
    (
        "String",
        "new",
        "alloc-in-htm",
        "`String::new` can allocate inside the transaction",
    ),
    (
        "Vec",
        "new",
        "alloc-in-htm",
        "`Vec::new` prepares an allocating buffer inside the transaction",
    ),
    (
        "Vec",
        "with_capacity",
        "alloc-in-htm",
        "`Vec::with_capacity` allocates inside the transaction",
    ),
    (
        "File",
        "open",
        "io-in-htm",
        "`File::open` is a syscall; syscalls abort HTM",
    ),
    (
        "File",
        "create",
        "io-in-htm",
        "`File::create` is a syscall; syscalls abort HTM",
    ),
    (
        "std",
        "fs",
        "io-in-htm",
        "`std::fs` operations are syscalls; syscalls abort HTM",
    ),
    (
        "std",
        "io",
        "io-in-htm",
        "`std::io` operations are syscalls; syscalls abort HTM",
    ),
    (
        "WalWriter",
        "create",
        "io-in-htm",
        "`WalWriter::create` opens and syncs a log file; syscalls abort HTM",
    ),
    (
        "WalWriter",
        "open",
        "io-in-htm",
        "`WalWriter::open` reads and truncates a log file; syscalls abort HTM",
    ),
];

pub fn run(files: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in files {
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            let scoped = f.htm_scope || params_contain(m, f, "HtmCtx");
            if !scoped {
                continue;
            }
            let Some((start, end)) = f.body else { continue };
            let t = &m.tokens;
            for i in start..end {
                let Some(name) = ident_at(t, i) else { continue };
                let line = t[i].line;
                // Macro bans: `name !`.
                if is_punct(t, i + 1, '!') {
                    if let Some((_, code, why)) = MACRO_BAN.iter().find(|(n, _, _)| *n == name) {
                        out.push(finding(m, f, line, code, why));
                    }
                    continue;
                }
                // Method bans: `. name (`.
                if i > start && is_punct(t, i - 1, '.') && is_punct(t, i + 1, '(') {
                    if let Some((_, code, why)) = METHOD_BAN.iter().find(|(n, _, _)| *n == name) {
                        out.push(finding(m, f, line, code, why));
                    }
                    continue;
                }
                // Path bans: `A :: B`.
                if is_punct(t, i + 1, ':')
                    && is_punct(t, i + 2, ':')
                    && matches!(t.get(i + 3).map(|x| &x.tok), Some(Tok::Ident(_)))
                {
                    let b = ident_at(t, i + 3).unwrap_or("");
                    if let Some((_, _, code, why)) = PATH_BAN
                        .iter()
                        .find(|(pa, pb, _, _)| *pa == name && *pb == b)
                    {
                        out.push(finding(m, f, line, code, why));
                    }
                }
            }
        }
    }
    out
}

fn finding(m: &FileModel, f: &crate::scan::FnInfo, line: u32, code: &str, why: &str) -> Finding {
    Finding {
        rule: RULE.to_string(),
        file: m.path.clone(),
        line,
        function: f.name.clone(),
        code: code.to_string(),
        detail: why.to_string(),
    }
}
