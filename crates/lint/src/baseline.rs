//! Findings, their JSON rendering, and the committed-baseline diff.
//!
//! A finding's *identity* deliberately excludes its line number: the
//! baseline must survive unrelated edits that shift code up or down.
//! Identity is `rule|file|function|code|detail`, counted as a multiset
//! so two identical hazards in one function are two findings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{esc, parse, Value};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    pub line: u32,
    /// Enclosing function (or `<file>` for module-level findings).
    pub function: String,
    /// Short machine code, e.g. `alloc-in-htm`.
    pub code: String,
    pub detail: String,
}

impl Finding {
    pub fn identity(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.rule, self.file, self.function, self.code, self.detail
        )
    }

    pub fn human(&self) -> String {
        format!(
            "{}:{}: [{}/{}] in `{}`: {}",
            self.file, self.line, self.rule, self.code, self.function, self.detail
        )
    }
}

/// Render findings as the canonical JSON document (sorted, stable).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"code\": \"{}\", \"detail\": \"{}\"}}",
            esc(&f.rule),
            esc(&f.file),
            f.line,
            esc(&f.function),
            esc(&f.code),
            esc(&f.detail)
        );
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parse a findings document (baseline or golden fixture file).
pub fn findings_from_json(src: &str) -> Result<Vec<Finding>, String> {
    let v = parse(src)?;
    let arr = v
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("missing `findings` array")?;
    let mut out = Vec::new();
    for item in arr {
        let s = |k: &str| -> Result<String, String> {
            item.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("finding missing string field `{k}`"))
        };
        out.push(Finding {
            rule: s("rule")?,
            file: s("file")?,
            line: item
                .get("line")
                .and_then(Value::as_u32)
                .ok_or("finding missing `line`")?,
            function: s("function")?,
            code: s("code")?,
            detail: s("detail")?,
        });
    }
    Ok(out)
}

/// Identity multiset of a finding list.
pub fn identity_counts(findings: &[Finding]) -> BTreeMap<String, u32> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry(f.identity()).or_insert(0) += 1;
    }
    m
}

/// Baseline comparison result.
pub struct Diff<'a> {
    /// Live findings beyond the baselined count for their identity.
    pub new: Vec<&'a Finding>,
    /// Baseline identities no longer present live (stale entries).
    pub stale: Vec<String>,
}

/// Diff live findings against the baseline: CI fails only on `new`.
pub fn diff<'a>(live: &'a [Finding], baseline: &[Finding]) -> Diff<'a> {
    let mut budget = identity_counts(baseline);
    let mut new = Vec::new();
    let mut sorted: Vec<&Finding> = live.iter().collect();
    sorted.sort();
    for f in sorted {
        let id = f.identity();
        match budget.get_mut(&id) {
            Some(n) if *n > 0 => *n -= 1,
            _ => new.push(f),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(id, _)| id)
        .collect();
    Diff { new, stale }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, file: &str, line: u32, detail: &str) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            function: "g".into(),
            code: "c".into(),
            detail: detail.into(),
        }
    }

    #[test]
    fn json_round_trip() {
        let fs = vec![f("r", "a.rs", 3, "x \"quoted\""), f("r", "b.rs", 9, "y")];
        let back = findings_from_json(&findings_to_json(&fs)).unwrap();
        assert_eq!(identity_counts(&fs), identity_counts(&back));
    }

    #[test]
    fn line_moves_do_not_break_the_baseline() {
        let base = vec![f("r", "a.rs", 3, "x")];
        let live = vec![f("r", "a.rs", 40, "x")];
        let d = diff(&live, &base);
        assert!(d.new.is_empty() && d.stale.is_empty());
    }

    #[test]
    fn extra_copies_and_stale_entries_are_reported() {
        let base = vec![f("r", "a.rs", 3, "x"), f("r", "a.rs", 5, "gone")];
        let live = vec![f("r", "a.rs", 3, "x"), f("r", "a.rs", 4, "x")];
        let d = diff(&live, &base);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.stale.len(), 1);
    }

    #[test]
    fn empty_baseline_flags_everything() {
        let live = vec![f("r", "a.rs", 1, "x")];
        assert_eq!(diff(&live, &[]).new.len(), 1);
    }
}
