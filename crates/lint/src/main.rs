//! CLI for `tufast-lint`.
//!
//! ```text
//! tufast-lint [--root DIR] [--json]
//!             [--baseline FILE] [--write-baseline]
//!             [--lock-order FILE] [--write-lock-order]
//! ```
//!
//! Exit codes: 0 clean (no findings beyond the baseline, artifact in
//! sync), 1 new findings or a stale lock-order artifact, 2 usage or I/O
//! error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tufast_lint::baseline::{diff, findings_from_json, findings_to_json};
use tufast_lint::rules::lockorder::artifact_json;
use tufast_lint::{Config, Report};

struct Opts {
    root: Option<PathBuf>,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    lock_order: Option<PathBuf>,
    write_lock_order: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tufast-lint [--root DIR] [--json] [--baseline FILE] [--write-baseline] \
         [--lock-order FILE] [--write-lock-order]"
    );
    ExitCode::from(2)
}

fn parse_opts() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        root: None,
        json: false,
        baseline: None,
        write_baseline: false,
        lock_order: None,
        write_lock_order: false,
    };
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => opts.root = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--json" => opts.json = true,
            "--baseline" => opts.baseline = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--write-baseline" => opts.write_baseline = true,
            "--lock-order" => opts.lock_order = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--write-lock-order" => opts.write_lock_order = true,
            "--help" | "-h" => {
                return Err(usage());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

/// Walk up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let Some(root) = opts.root.clone().or_else(find_root) else {
        eprintln!("tufast-lint: could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };
    let cfg = Config::for_workspace(root.clone());
    let report: Report = match tufast_lint::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tufast-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    let artifact_path = opts
        .lock_order
        .unwrap_or_else(|| root.join("lint-lock-order.json"));
    let artifact = artifact_json(&report.lock_order);

    if opts.write_baseline {
        if let Err(e) = fs::write(&baseline_path, findings_to_json(&report.findings)) {
            eprintln!("tufast-lint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "tufast-lint: wrote {} ({} findings)",
            baseline_path.display(),
            report.findings.len()
        );
    }
    if opts.write_lock_order {
        if let Err(e) = fs::write(&artifact_path, &artifact) {
            eprintln!("tufast-lint: write {}: {e}", artifact_path.display());
            return ExitCode::from(2);
        }
        eprintln!("tufast-lint: wrote {}", artifact_path.display());
    }
    if opts.write_baseline || opts.write_lock_order {
        return ExitCode::SUCCESS;
    }

    // Baseline diff: a missing baseline file means an empty baseline.
    let base = match fs::read_to_string(&baseline_path) {
        Ok(text) => match findings_from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("tufast-lint: parse {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let d = diff(&report.findings, &base);

    // Artifact check: when a committed artifact exists it must match the
    // regenerated one byte-for-byte.
    let artifact_ok = match fs::read_to_string(&artifact_path) {
        Ok(committed) => committed == artifact,
        Err(_) => true, // not committed yet: nothing to check
    };

    if opts.json {
        let mut out = String::from("{\n  \"version\": 1,\n");
        let all = findings_to_json(&report.findings);
        let new: Vec<_> = d.new.iter().map(|f| (*f).clone()).collect();
        let new_json = findings_to_json(&new);
        // Splice the pre-rendered docs in as sub-objects.
        out.push_str("  \"live\": ");
        out.push_str(all.trim_end());
        out.push_str(",\n  \"new\": ");
        out.push_str(new_json.trim_end());
        out.push_str(",\n  \"stale_baseline_entries\": [");
        for (i, s) in d.stale.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&tufast_lint::json::esc(s));
            out.push('"');
        }
        out.push_str("],\n  \"lock_order_artifact_ok\": ");
        out.push_str(if artifact_ok { "true" } else { "false" });
        out.push_str("\n}");
        println!("{out}");
    } else {
        for f in &d.new {
            println!("{}", f.human());
        }
        for s in &d.stale {
            println!("stale baseline entry (fixed or renamed): {s}");
        }
        println!(
            "tufast-lint: {} findings, {} new vs baseline, {} stale baseline entries",
            report.findings.len(),
            d.new.len(),
            d.stale.len()
        );
        if !artifact_ok {
            println!(
                "tufast-lint: {} is out of date; refresh with --write-lock-order",
                artifact_path.display()
            );
        }
    }

    if d.new.is_empty() && artifact_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
