//! `tufast-lint`: a dependency-free static TM-safety analyzer for the
//! TuFast workspace.
//!
//! Four rule families (see `rules/`):
//!
//! 1. `htm-hazard` — allocation, I/O, and panics inside HTM scopes.
//! 2. `lock-order` — the static lock-acquisition graph must be acyclic
//!    over blocking acquisitions; the discovered order is emitted as a
//!    machine-checked artifact.
//! 3. `memory-ordering` — `SeqCst` on hot paths needs justification;
//!    `Relaxed` on cross-thread hand-off flags is flagged.
//! 4. `unwind-containment` — scheduler entry points must route worker
//!    closures through `catch_unwind`.
//!
//! Diagnostics diff against a committed `lint-baseline.json`; CI fails
//! only on *new* findings, and inline
//! `// tufast-lint: allow(<rule>) -- <reason>` comments suppress a
//! finding with a mandatory justification.

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::fs;
use std::path::{Path, PathBuf};

use baseline::Finding;
use rules::lockorder::LockOrder;
use scan::FileModel;

/// Rule name for diagnostics about the lint's own directives.
pub const DIRECTIVE_RULE: &str = "lint-directive";

/// What to analyze and where the per-rule scopes lie.
pub struct Config {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Directories (relative to `root`) whose `.rs` files are scanned.
    pub scan_dirs: Vec<String>,
    /// Path substrings inside which the memory-ordering rule applies.
    pub ordering_scope: Vec<String>,
    /// Path substrings inside which unwind containment is demanded.
    pub unwind_scope: Vec<String>,
}

impl Config {
    /// The production configuration: every `crates/*/src` tree, with the
    /// ordering rule scoped to the work-distribution and HTM cores and
    /// unwind containment demanded of the scheduler crates.
    pub fn for_workspace(root: PathBuf) -> Config {
        let mut scan_dirs = Vec::new();
        if let Ok(entries) = fs::read_dir(root.join("crates")) {
            let mut names: Vec<String> = entries
                .flatten()
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            for n in names {
                if root.join("crates").join(&n).join("src").is_dir() {
                    scan_dirs.push(format!("crates/{n}/src"));
                }
            }
        }
        Config {
            root,
            scan_dirs,
            ordering_scope: vec!["crates/core/src".into(), "crates/htm/src".into()],
            unwind_scope: vec!["crates/txn/src".into(), "crates/core/src".into()],
        }
    }
}

/// Full analysis output.
pub struct Report {
    /// Unsuppressed findings, sorted.
    pub findings: Vec<Finding>,
    pub lock_order: LockOrder,
}

/// Collect the `.rs` files under `dir`, recursively, in sorted order.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Scan the configured directories into file models.
pub fn load_files(cfg: &Config) -> Result<Vec<FileModel>, String> {
    let mut files = Vec::new();
    for dir in &cfg.scan_dirs {
        let mut paths = Vec::new();
        walk(&cfg.root.join(dir), &mut paths);
        for p in paths {
            let src = fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(&cfg.root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(scan::scan_file(rel, &src));
        }
    }
    Ok(files)
}

/// Run every pass over `files` and apply suppressions.
pub fn analyze(cfg: &Config, files: &[FileModel]) -> Report {
    let mut findings = Vec::new();
    findings.extend(rules::htm::run(files));
    findings.extend(rules::ordering::run(files, &cfg.ordering_scope));
    findings.extend(rules::unwind::run(files, &cfg.unwind_scope));
    findings.extend(rules::readpurity::run(files));
    let (lock_findings, lock_order) = rules::lockorder::run(files);
    findings.extend(lock_findings);

    // Inline suppressions (line-accurate, per rule).
    findings.retain(|f| {
        files
            .iter()
            .find(|m| m.path == f.file)
            .is_none_or(|m| !m.suppressed(&f.rule, f.line))
    });

    // The directives themselves are linted: a suppression without a
    // reason and a malformed/dangling marker are findings, so fixing
    // them cannot be forgotten.
    for m in files {
        for s in &m.suppressions {
            if !s.has_reason {
                findings.push(Finding {
                    rule: DIRECTIVE_RULE.to_string(),
                    file: m.path.clone(),
                    line: s.line,
                    function: "<module>".to_string(),
                    code: "missing-reason".to_string(),
                    detail: format!("allow({}) without a `-- <reason>` justification", s.rule),
                });
            }
        }
        for (line, msg) in &m.directive_errors {
            findings.push(Finding {
                rule: DIRECTIVE_RULE.to_string(),
                file: m.path.clone(),
                line: *line,
                function: "<module>".to_string(),
                code: "malformed-directive".to_string(),
                detail: msg.clone(),
            });
        }
    }

    findings.sort();
    Report {
        findings,
        lock_order,
    }
}

/// Convenience: load + analyze.
pub fn run(cfg: &Config) -> Result<Report, String> {
    let files = load_files(cfg)?;
    Ok(analyze(cfg, &files))
}
