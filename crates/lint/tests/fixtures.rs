//! Golden-fixture tests: the known-bad snippets must produce exactly the
//! committed diagnostics (at least one true positive per rule family),
//! and the known-clean lookalikes must produce zero findings.
//!
//! Regenerate the golden file after an intentional rule change with:
//! `UPDATE_GOLDEN=1 cargo test -p tufast-lint --test fixtures`

use std::collections::BTreeSet;
use std::path::PathBuf;

use tufast_lint::baseline::{findings_from_json, findings_to_json, identity_counts};
use tufast_lint::{analyze, load_files, Config};

fn fixture_config(which: &str) -> Config {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which);
    Config {
        root,
        scan_dirs: vec![String::new()],
        ordering_scope: vec![String::new()],
        unwind_scope: vec![String::new()],
    }
}

#[test]
fn known_bad_matches_golden() {
    let cfg = fixture_config("known_bad");
    let files = load_files(&cfg).expect("fixtures readable");
    let report = analyze(&cfg, &files);
    let live = findings_to_json(&report.findings);

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/known_bad/expected.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &live).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden file committed");
    let expected = findings_from_json(&golden).expect("golden parses");
    assert_eq!(
        identity_counts(&report.findings),
        identity_counts(&expected),
        "known-bad diagnostics drifted from the golden file;\nlive:\n{live}"
    );
}

#[test]
fn known_bad_covers_every_rule_family() {
    let cfg = fixture_config("known_bad");
    let files = load_files(&cfg).expect("fixtures readable");
    let report = analyze(&cfg, &files);
    let rules: BTreeSet<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    for family in [
        "htm-hazard",
        "lock-order",
        "memory-ordering",
        "unwind-containment",
        "read-purity",
        "lint-directive",
    ] {
        assert!(
            rules.contains(family),
            "no true positive for rule family `{family}`; got {rules:?}"
        );
    }
}

#[test]
fn known_bad_finds_the_deadlock_cycle() {
    let cfg = fixture_config("known_bad");
    let files = load_files(&cfg).expect("fixtures readable");
    let report = analyze(&cfg, &files);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "deadlock-cycle" && f.detail.contains("accounts")),
        "AB/BA mutex cycle not detected"
    );
    assert!(
        report.findings.iter().any(|f| f.code == "self-cycle"),
        "mutex self-cycle not detected"
    );
    assert!(
        report.lock_order.order.is_empty(),
        "a cyclic graph must not yield a topological order"
    );
}

#[test]
fn known_clean_is_silent() {
    let cfg = fixture_config("known_clean");
    let files = load_files(&cfg).expect("fixtures readable");
    let report = analyze(&cfg, &files);
    assert!(
        report.findings.is_empty(),
        "false positives on known-clean fixtures:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
