//! Self-check: the live workspace must match the committed baseline and
//! lock-order artifact *exactly* — byte-for-byte for the artifact,
//! identity-for-identity for the findings. Runs in plain `cargo test`,
//! so a drive-by hazard fails the suite even without the CI lint job.

use std::path::PathBuf;

use tufast_lint::baseline::{diff, findings_from_json, findings_to_json};
use tufast_lint::rules::lockorder::artifact_json;
use tufast_lint::Config;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn live_workspace_matches_committed_baseline() {
    let root = workspace_root();
    let cfg = Config::for_workspace(root.clone());
    let report = tufast_lint::run(&cfg).expect("workspace scans");

    let committed = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    let baseline = findings_from_json(&committed).expect("baseline parses");

    let d = diff(&report.findings, &baseline);
    assert!(
        d.new.is_empty(),
        "new lint findings vs the committed baseline:\n{}",
        d.new
            .iter()
            .map(|f| f.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        d.stale.is_empty(),
        "stale baseline entries (fixed findings still baselined — refresh \
         with `cargo run -p tufast-lint -- --write-baseline`):\n{}",
        d.stale.join("\n")
    );
    // The committed file must also be the canonical rendering, so the
    // baseline cannot drift formatting-wise.
    assert_eq!(
        committed,
        findings_to_json(&baseline),
        "lint-baseline.json is not in canonical form"
    );
}

#[test]
fn live_lock_order_matches_committed_artifact() {
    let root = workspace_root();
    let cfg = Config::for_workspace(root.clone());
    let report = tufast_lint::run(&cfg).expect("workspace scans");

    let committed = std::fs::read_to_string(root.join("lint-lock-order.json"))
        .expect("lint-lock-order.json is committed at the workspace root");
    assert_eq!(
        committed,
        artifact_json(&report.lock_order),
        "lock-order artifact is stale; refresh with \
         `cargo run -p tufast-lint -- --write-lock-order`"
    );
}

#[test]
fn live_lock_order_is_acyclic() {
    let cfg = Config::for_workspace(workspace_root());
    let report = tufast_lint::run(&cfg).expect("workspace scans");
    let dangerous = report
        .lock_order
        .edges
        .iter()
        .filter(|e| e.blocking_target && !e.suppressed && e.from != e.to)
        .count();
    assert!(
        dangerous == 0 || !report.lock_order.order.is_empty(),
        "dangerous lock edges exist but no topological order was derived"
    );
}
