//! Known-bad: both memory-ordering defect classes.

pub fn publish(&self, result: u64) {
    self.slot.store(result, Ordering::Release);
    self.done.store(true, Ordering::Relaxed); // relaxed-handoff-flag
}

pub fn poll(&self) -> bool {
    self.counter.fetch_add(1, Ordering::SeqCst); // seqcst-hot-path
    self.done.load(Ordering::Relaxed) // relaxed-handoff-flag
}
