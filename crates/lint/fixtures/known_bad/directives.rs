//! Known-bad: directive misuse is itself diagnosed.

// tufast-lint: allow(htm-hazard)
pub fn suppressed_without_reason(ctx: &mut HtmCtx) {
    ctx.buf.clone();
}

// tufast-lint: frobnicate(everything)
pub fn unknown_directive() {}

// tufast-lint: lock-acquire(orphan_class)
