//! Known-bad: two functions take the same two mutexes in opposite
//! orders — the classic AB/BA deadlock.

pub fn transfer(&self) {
    let a = self.accounts.lock().unwrap_or_default();
    let b = self.audit.lock().unwrap_or_default();
    drop((a, b));
}

pub fn reconcile(&self) {
    let b = self.audit.lock().unwrap_or_default();
    let a = self.accounts.lock().unwrap_or_default();
    drop((a, b));
}

pub fn reenter(&self) {
    let first = self.accounts.lock().unwrap_or_default();
    let again = self.accounts.lock().unwrap_or_default(); // self-cycle
    drop((first, again));
}
