//! Known-bad: scheduler entry points that never contain a panic.

pub fn execute(&mut self, hint: usize, body: &mut TxnBody<'_>) -> TxnOutcome {
    loop {
        match self.attempt_once(hint, body) {
            Ok(out) => return out,
            Err(_) => continue,
        }
    }
}

pub fn parallel_drain_naive(&self, pool: &WorkPool) {
    while let Some(item) = pool.pop() {
        self.process(item);
    }
}

// tufast-lint: unwind-entry
pub fn run_round(&mut self, visitor: &mut dyn FnMut(u32)) {
    for v in 0..self.n {
        visitor(v);
    }
}
