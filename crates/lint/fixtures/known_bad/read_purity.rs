//! Known-bad: transactional writes reachable from bodies dispatched with
//! a declared-pure (`read_only = true`) hint. The R attempt always trips
//! the write probe and demotes — the declaration is a lie.

fn debit_total(ops: &mut TxnOps<'_>, addr: u64, amount: u64) {
    let cur = ops.read(addr)?;
    ops.write(addr, cur - amount);
}

fn audit_and_debit(ops: &mut TxnOps<'_>, addr: u64) {
    // No write of its own — reaches one through the helper below.
    debit_total(ops, addr, 1);
}

pub fn refresh_cache(&mut self, w: &mut Worker) {
    // Direct `.write(` inside a body dispatched as declared-pure.
    w.execute_hinted(TxnHint::read_only(2), &mut |ops| {
        let stale = ops.read(self.addr)?;
        ops.write(self.addr, stale);
        Ok(())
    });
}

pub fn sum_with_side_effect(&mut self, w: &mut Worker) {
    // Transitive write through a chain of TxnOps-taking helpers, with a
    // struct-literal hint instead of the constructor.
    w.execute_hinted(
        TxnHint {
            size: 4,
            read_only: true,
        },
        &mut |ops| {
            audit_and_debit(ops, self.addr);
            Ok(())
        },
    );
}
