//! Known-bad: every class of HTM hazard, inside both kinds of scope
//! (an `HtmCtx` parameter and an `htm-scope` marker).

pub fn attempt(ctx: &mut HtmCtx, items: &[u64]) -> Result<(), ()> {
    let label = format!("attempt-{}", items.len()); // alloc-in-htm (macro)
    let boxed = Box::new(items.len()); // alloc-in-htm (path)
    let mut log = Vec::new();
    log.push(label); // alloc-in-htm (method)
    println!("entered with {boxed:?}"); // io-in-htm
    let first = items.first().unwrap(); // panic-in-htm
    ctx.write(*first)
}

// tufast-lint: htm-scope
fn commit_piece(&mut self) {
    self.scratch.clone(); // alloc-in-htm via marker-scoped fn
}

fn unscoped_helper(items: &[u64]) -> String {
    // Not an HTM scope: identical patterns must NOT be flagged here.
    let s = format!("{items:?}");
    s.clone()
}

pub fn durable_commit(ctx: &mut HtmCtx, wal: &mut WalWriter, m: Mutation) -> Result<(), ()> {
    wal.append(m); // io-in-htm: WAL frame write inside the transaction
    wal.commit_sync(); // io-in-htm: group-commit fsync inside the transaction
    wal.file.sync_data(); // io-in-htm: raw fdatasync inside the transaction
    ctx.write(0)
}

// tufast-lint: htm-scope
fn reopen_log(&mut self) {
    self.wal = WalWriter::open(&self.dir); // io-in-htm via marker-scoped fn
    self.wal.sync_now(); // io-in-htm
}
