//! Known-clean: benign lookalikes for every rule. The analyzer must
//! report ZERO findings on this file.

pub fn attempt(ctx: &mut HtmCtx, items: &[u64]) -> Result<u64, ()> {
    // Token-exact matching: `unwrap_or` is not `unwrap`.
    let first = items.first().copied().unwrap_or(0);
    // String contents are invisible to the lexer.
    let marker = "format! println! Box::new .unwrap()";
    let _ = marker;
    ctx.write(first)
}

// tufast-lint: htm-scope
fn scoped_but_justified(&mut self) {
    // tufast-lint: allow(htm-hazard) -- scratch is presized at construction; push cannot reallocate
    self.scratch.push(1);
}

pub fn helper_outside_scope(items: &[u64]) -> String {
    // Identical hazards outside an HTM scope are fine.
    format!("{}", items.len())
}

pub fn consistent_order_a(&self) {
    let a = self.accounts.lock().unwrap_or_default();
    let b = self.audit.lock().unwrap_or_default();
    drop((a, b));
}

pub fn consistent_order_b(&self) {
    let a = self.accounts.lock().unwrap_or_default();
    let b = self.audit.lock().unwrap_or_default();
    drop((a, b));
}

pub fn publish(&self, result: u64) {
    self.slot.store(result, Ordering::Release);
    self.done.store(true, Ordering::Release);
}

pub fn poll(&self) -> bool {
    self.done.load(Ordering::Acquire)
}

pub fn execute(&mut self, hint: usize, body: &mut TxnBody<'_>) -> TxnOutcome {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        self.attempt_once(hint, body)
    }));
    self.unpack(out)
}

pub fn warm_count(&mut self, w: &mut Worker) -> u64 {
    // A declared-pure body that only reads is the intended use.
    let mut total = 0;
    w.execute_hinted(TxnHint::read_only(2), &mut |ops| {
        total = ops.read(self.addr)?;
        Ok(())
    });
    total
}

pub fn bump(&mut self, w: &mut Worker) {
    // Writing is fine under a sized (non-pure) hint.
    w.execute_hinted(TxnHint::sized(2), &mut |ops| {
        ops.write(self.addr, 1);
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt(ctx: &mut HtmCtx) {
        let v = vec![1, 2, 3];
        println!("{}", v.len());
        assert_eq!(v.first().unwrap(), &1);
    }
}
